// Fabric deployment: the multi-switch variant of the chaos harness. The
// single remote switch of Deployment becomes a fabric.Topology of ≥3
// switches with redundant trunks, where every layer rides a faultable
// simnet transport:
//
//   - one OpenFlow control channel per switch (tag "ofctl-<name>" against
//     listener "switch-<name>"), each driving its switch's share of the
//     compiled policy through fabric.SwitchSink, so a reconnect resync
//     replays the static trunk band alongside the policy bands;
//   - one simnet pipe per trunk link carrying framed pkt.Packets between
//     the remote switches, so partitions, stalls, corruption and resets
//     hit the data plane's cross-switch forwarding, not just control;
//   - the same redialing BGP peers as the single-switch harness.
//
// A local fabric.Fabric (Model) mirrors the controller directly and acts
// as the authoritative per-switch rule state: convergence requires every
// remote table to be byte-identical to its model switch. Because writes
// into a one-way partition vanish silently, a control channel can stay
// alive while its flow-mods are lost; the convergence check doubles as an
// anti-entropy audit that bounces any channel whose table stays diverged,
// forcing the flush-and-replay resync.
package chaostest

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/dataplane"
	"sdx/internal/fabric"
	"sdx/internal/iputil"
	"sdx/internal/openflow"
	"sdx/internal/pkt"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
	"sdx/internal/simnet"
	"sdx/internal/verify"
)

// SwitchListener and SwitchTag name the per-switch OpenFlow endpoints in
// the simnet namespace; scripted faults target one control channel
// without touching its siblings.
func SwitchListener(name string) string { return "switch-" + name }
func SwitchTag(name string) string      { return "ofctl-" + name }

// divergeBounce is how many consecutive Converged checks (20ms apart) a
// remote table may stay diverged with a live channel before the channel
// is bounced to force a full resync. The grace absorbs in-flight
// flow-mods; silent loss into a one-way partition never self-heals
// without the bounce.
const divergeBounce = 8

// FabricDeployment is a multi-switch SDX stack wired over one simnet
// Network.
type FabricDeployment struct {
	Net   *simnet.Network
	Ctrl  *sdx.Controller
	Srv   *sdx.BGPServer
	Model *fabric.Fabric
	Peers map[uint32]*Peer

	// Rec reconciles every remote switch's installed table against the
	// local model. Always constructed; its continuous loop runs only
	// when Options.ReconcileInterval is set (drive it manually with
	// ReconcileOnce).
	Rec *reconcile.Reconciler
	// Prb injects liveness probes across all participant port pairs of
	// the remote fabric. Always constructed; its loop runs only when
	// Options.ProbeInterval is set.
	Prb *probe.Prober

	specs     []PeerSpec
	opts      Options
	topo      fabric.Topology
	names     []string // sorted switch names
	remote    map[string]*dataplane.Switch
	portSw    map[pkt.PortID]string
	trunkTags []string

	reds       map[string]*openflow.Redialer
	mu         sync.Mutex
	sinks      map[*openflow.Client]core.RuleSink
	diverge    map[string]int
	gens       map[string]uint64 // per-switch channel/table generation
	appDeliver map[pkt.PortID]func(pkt.Packet)

	lns    []*simnet.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartFabric brings up the multi-switch stack on n: route server at
// "rs", one remote switch+agent per topology member, per-switch control
// channels, trunk pipes between the switches, and one redialing BGP peer
// per spec. Every participant port in the specs must be placed by
// topo.Ports.
func StartFabric(n *simnet.Network, seed int64, specs []PeerSpec, topo fabric.Topology, opts Options) (*FabricDeployment, error) {
	opts.fill()
	for _, spec := range specs {
		for _, port := range spec.ports() {
			if _, ok := topo.Ports[port]; !ok {
				return nil, fmt.Errorf("chaostest: AS%d port %d not placed by the topology", spec.AS, port)
			}
		}
	}
	ctrl, err := buildController(specs, opts)
	if err != nil {
		return nil, err
	}
	model, err := fabric.New(topo)
	if err != nil {
		return nil, err
	}
	ctrl.AddRuleMirror(model)

	rsLn, err := n.Listen("rs")
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	fd := &FabricDeployment{
		Net:        n,
		Ctrl:       ctrl,
		Srv:        sdx.ServeBGP(ctrl, rsLn, 64512),
		Model:      model,
		Peers:      make(map[uint32]*Peer),
		specs:      specs,
		opts:       opts,
		topo:       topo,
		remote:     make(map[string]*dataplane.Switch),
		portSw:     make(map[pkt.PortID]string, len(topo.Ports)),
		reds:       make(map[string]*openflow.Redialer),
		sinks:      make(map[*openflow.Client]core.RuleSink),
		diverge:    make(map[string]int),
		gens:       make(map[string]uint64),
		appDeliver: make(map[pkt.PortID]func(pkt.Packet)),
		lns:        []*simnet.Listener{},
		cancel:     cancel,
	}
	fail := func(err error) (*FabricDeployment, error) {
		fd.Stop()
		return nil, err
	}
	for port, sw := range topo.Ports {
		fd.portSw[port] = sw
	}
	fd.names = append(fd.names, topo.Switches...)
	sort.Strings(fd.names)

	// Remote switches: participant ports per the topology (delivery
	// routed through the probe tap), trunk ports per the links (delivery
	// wired to the trunk pipes below).
	for _, name := range fd.names {
		sw := dataplane.NewSwitch(name)
		for port, owner := range topo.Ports {
			if owner != name {
				continue
			}
			port := port
			deliver := func(p pkt.Packet) { fd.deliverParticipant(port, p) }
			if err := sw.AddPort(port, fmt.Sprintf("p%d", port), deliver); err != nil {
				return fail(err)
			}
		}
		fd.remote[name] = sw
	}

	// Liveness prober: every ordered pair of distinct participant ports,
	// injected into the remote fabric so probes cross the real trunk
	// pipes. Constructed before any delivery can happen so the tap in
	// deliverParticipant never races the assignment.
	ports := make([]pkt.PortID, 0, len(topo.Ports))
	for port := range topo.Ports {
		ports = append(ports, port)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	var pairs []probe.Pair
	for _, from := range ports {
		for _, to := range ports {
			if from != to {
				pairs = append(pairs, probe.Pair{From: from, To: to})
			}
		}
	}
	fd.Prb = probe.New(probe.Config{
		Interval: opts.ProbeInterval,
		Registry: ctrl.Metrics(),
		Logf:     opts.Logf,
	}, fd.InjectRemote, pairs...)
	for i, l := range topo.Links {
		a, b := fd.remote[l.A], fd.remote[l.B]
		if a == nil || b == nil {
			return fail(fmt.Errorf("chaostest: link between unknown switches %q-%q", l.A, l.B))
		}
		if err := a.AddPort(l.PortA, "trunk", nil); err != nil {
			return fail(err)
		}
		if err := b.AddPort(l.PortB, "trunk", nil); err != nil {
			return fail(err)
		}
		tag := fmt.Sprintf("trunk%d-%s-%s", i, l.A, l.B)
		fd.trunkTags = append(fd.trunkTags, tag)
		outA := make(chan pkt.Packet, 128)
		outB := make(chan pkt.Packet, 128)
		if err := a.SetDeliver(l.PortA, enqueue(outA)); err != nil {
			return fail(err)
		}
		if err := b.SetDeliver(l.PortB, enqueue(outB)); err != nil {
			return fail(err)
		}
		l := l
		fd.wg.Add(1)
		go fd.runTrunk(ctx, l, tag, outA, outB)
	}

	// Per-switch agents and redialing control channels.
	for i, name := range fd.names {
		ln, err := n.Listen(SwitchListener(name))
		if err != nil {
			return fail(err)
		}
		fd.lns = append(fd.lns, ln)
		agent := openflow.NewAgent(fd.remote[name])
		fd.wg.Add(1)
		go func() {
			defer fd.wg.Done()
			_ = agent.ListenAndServe(ln)
		}()

		name := name
		red := &openflow.Redialer{
			Dial: func(context.Context) (*openflow.Client, error) {
				conn, err := n.Dial(SwitchListener(name), SwitchTag(name))
				if err != nil {
					return nil, err
				}
				// Bound the hello exchange: a partition landing
				// mid-handshake must fail the attempt into the backoff
				// loop, not wedge it.
				_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
				c, err := openflow.NewClient(conn)
				if err != nil {
					return nil, err
				}
				_ = conn.SetDeadline(time.Time{})
				return c, nil
			},
			OnUp: func(c *openflow.Client) {
				inner, err := model.SwitchSink(name, openflow.Mirror{C: c})
				if err != nil {
					return
				}
				sink := &genSink{bump: func() { fd.bumpGen(name) }, inner: inner}
				fd.mu.Lock()
				fd.gens[name]++
				fd.sinks[c] = sink
				fd.mu.Unlock()
				ctrl.AddRuleMirror(sink)
			},
			OnDown: func(c *openflow.Client, _ error) {
				fd.mu.Lock()
				fd.gens[name]++
				sink := fd.sinks[c]
				delete(fd.sinks, c)
				fd.mu.Unlock()
				if sink != nil {
					ctrl.RemoveRuleMirror(sink)
				}
			},
			MinBackoff: opts.MinBackoff,
			MaxBackoff: opts.MaxBackoff,
			Seed:       seed + 1000 + int64(i),
		}
		fd.reds[name] = red
		fd.wg.Add(1)
		go func() {
			defer fd.wg.Done()
			_ = red.Run(ctx)
		}()
	}

	for _, spec := range specs {
		p := newPeer(n, ctrl, spec, opts, seed)
		fd.Peers[spec.AS] = p
		fd.wg.Add(1)
		go func() {
			defer fd.wg.Done()
			_ = p.dialer.Run(ctx)
		}()
	}

	// Reconciler: one target per member switch, diffing the remote table
	// against the local model's, repairing over the live control channel
	// and escalating to the controller's flush-and-replay resync.
	targets := make([]reconcile.Target, 0, len(fd.names))
	for _, name := range fd.names {
		name := name
		targets = append(targets, reconcile.Target{
			Name:     name,
			Intended: func() []*dataplane.FlowEntry { return model.Switch(name).Table().Entries() },
			Installed: func() ([]*dataplane.FlowEntry, bool) {
				if fd.reds[name].Client() == nil {
					return nil, false
				}
				return fd.remote[name].Table().Entries(), true
			},
			Sink: func() reconcile.Sink {
				c := fd.reds[name].Client()
				if c == nil {
					return nil
				}
				return openflow.Mirror{C: c}
			},
			Generation: func() uint64 { return fd.genOf(name) },
			Escalate:   func() { fd.escalateSwitch(name) },
			Topo:       &fd.topo,
		})
	}
	fd.Rec = reconcile.New(reconcile.Config{
		Interval: opts.ReconcileInterval,
		Registry: ctrl.Metrics(),
		Logf:     opts.Logf,
	}, targets...)
	if opts.ReconcileInterval > 0 {
		fd.Rec.Start()
	}
	if opts.ProbeInterval > 0 {
		fd.Prb.Start()
	}
	return fd, nil
}

// Stop tears the deployment down in the same order as Deployment.Stop,
// stopping the reconciler and prober loops first.
func (fd *FabricDeployment) Stop() {
	if fd.Prb != nil {
		fd.Prb.Stop()
	}
	if fd.Rec != nil {
		fd.Rec.Stop()
	}
	_ = fd.Srv.Close()
	fd.cancel()
	for _, ln := range fd.lns {
		_ = ln.Close()
	}
	fd.wg.Wait()
}

// deliverParticipant is the delivery tap on every participant port:
// liveness probes are consumed by the prober, everything else goes to
// the application handler installed with OnDeliver.
func (fd *FabricDeployment) deliverParticipant(port pkt.PortID, p pkt.Packet) {
	if fd.Prb.Deliver(port, p) {
		return
	}
	fd.mu.Lock()
	h := fd.appDeliver[port]
	fd.mu.Unlock()
	if h != nil {
		h(p)
	}
}

func (fd *FabricDeployment) bumpGen(name string) {
	fd.mu.Lock()
	fd.gens[name]++
	fd.mu.Unlock()
}

func (fd *FabricDeployment) genOf(name string) uint64 {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.gens[name]
}

// escalateSwitch is one switch's flush-and-replay path: a full
// controller resync through the channel's registered per-switch sink,
// which replays the policy bands and the static trunk band.
func (fd *FabricDeployment) escalateSwitch(name string) {
	c := fd.reds[name].Client()
	if c == nil {
		return
	}
	fd.mu.Lock()
	sink := fd.sinks[c]
	fd.mu.Unlock()
	if sink != nil {
		fd.Ctrl.Resync(sink)
	}
}

// ReconcileOnce drives one deterministic reconciler pass.
func (fd *FabricDeployment) ReconcileOnce() reconcile.Summary { return fd.Rec.RunOnce() }

func (fd *FabricDeployment) logf(format string, args ...any) {
	if fd.opts.Logf != nil {
		fd.opts.Logf(format, args...)
	}
}

// Targets returns every faultable transport of the deployment with both
// endpoints named, so GenScript schedules can partition any of them in
// one direction only: BGP sessions, per-switch control channels and the
// inter-switch trunks.
func (fd *FabricDeployment) Targets() []simnet.Target {
	ts := make([]simnet.Target, 0, len(fd.specs)+len(fd.names)+len(fd.trunkTags))
	for _, s := range fd.specs {
		ts = append(ts, simnet.Target{Tag: s.Tag(), Peer: "rs"})
	}
	for _, name := range fd.names {
		ts = append(ts, simnet.Target{Tag: SwitchTag(name), Peer: SwitchListener(name)})
	}
	for _, tag := range fd.trunkTags {
		// A pipe's halves are tagged tag and tag+"-peer"; a directed
		// partition between them starves exactly one trunk direction.
		ts = append(ts, simnet.Target{Tag: tag, Peer: tag + "-peer"})
	}
	return ts
}

// SwitchNames returns the sorted fabric member names.
func (fd *FabricDeployment) SwitchNames() []string {
	return append([]string(nil), fd.names...)
}

// OFClient returns one switch's live control-channel client, or nil
// while it is down.
func (fd *FabricDeployment) OFClient(name string) *openflow.Client {
	red := fd.reds[name]
	if red == nil {
		return nil
	}
	return red.Client()
}

// ModelRules dumps the local model's table for one switch — the expected
// remote state.
func (fd *FabricDeployment) ModelRules(name string) []string {
	return ruleDump(fd.Model.Switch(name).Table())
}

// RemoteRules dumps one remote switch's table as programmed over its
// control channel.
func (fd *FabricDeployment) RemoteRules(name string) []string {
	return ruleDump(fd.remote[name].Table())
}

// InjectRemote offers a packet to the remote fabric on a participant
// port, entering at the switch owning it.
func (fd *FabricDeployment) InjectRemote(port pkt.PortID, p pkt.Packet) bool {
	name, ok := fd.portSw[port]
	if !ok {
		return false
	}
	return fd.remote[name].Inject(port, p) > 0
}

// OnDeliver installs the application delivery handler for a participant
// port on the remote fabric. Handlers sit behind the probe tap: liveness
// probes are consumed before they reach the handler.
func (fd *FabricDeployment) OnDeliver(port pkt.PortID, deliver func(pkt.Packet)) error {
	if _, ok := fd.portSw[port]; !ok {
		return fmt.Errorf("chaostest: unknown participant port %d", port)
	}
	fd.mu.Lock()
	fd.appDeliver[port] = deliver
	fd.mu.Unlock()
	return nil
}

// ServerView renders what the route server currently advertises to as.
func (fd *FabricDeployment) ServerView(as uint32) []string {
	ads := fd.Ctrl.RoutesFor(as)
	lines := make([]string, 0, len(ads))
	for _, ad := range ads {
		lines = append(lines, fmt.Sprintf("%s via %s path %v", ad.Prefix, ad.NextHop, ad.Attrs.ASPath))
	}
	sort.Strings(lines)
	return lines
}

// Converged returns nil when every BGP session is Established, every
// control channel is up, every peer's Loc-RIB matches the server view,
// and every remote switch's table is byte-identical to the local model's.
// A remote table that stays diverged while its channel is up has lost
// flow-mods (one-way partition); after divergeBounce consecutive
// observations the channel is closed so the redialer's resync replays
// the full table, trunk band included.
func (fd *FabricDeployment) Converged() error {
	for _, spec := range fd.specs {
		if p := fd.Peers[spec.AS]; !p.Established() {
			return fmt.Errorf("AS%d: session not established", spec.AS)
		}
	}
	for _, spec := range fd.specs {
		p := fd.Peers[spec.AS]
		got, want := p.RIBDump(), fd.ServerView(spec.AS)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			return fmt.Errorf("AS%d Loc-RIB diverges from server view\n peer:\n  %s\n server:\n  %s",
				spec.AS, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
		}
	}
	var firstErr error
	for _, name := range fd.names {
		if fd.reds[name].Client() == nil {
			// No audit while the channel resyncs.
			if firstErr == nil {
				firstErr = fmt.Errorf("switch %s: control channel down", name)
			}
			continue
		}
		want, got := fd.ModelRules(name), fd.RemoteRules(name)
		if strings.Join(want, "\n") == strings.Join(got, "\n") {
			fd.mu.Lock()
			fd.diverge[name] = 0
			fd.mu.Unlock()
			continue
		}
		if !fd.opts.DisableAudit {
			fd.auditDiverged(name)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("switch %s table diverges from model\n remote:\n  %s\n model:\n  %s",
				name, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
		}
	}
	return firstErr
}

// auditDiverged advances one switch's divergence streak and bounces its
// live channel when the streak exceeds the in-flight grace. The bounce
// is fenced by the switch's generation: the client and generation are
// captured at the decision, and the close is skipped when the channel
// has already been bounced and resynced in between — closing the fresh
// channel would tear down the very resync that healed the divergence
// (and, with the reconciler running, trample its repaired table).
func (fd *FabricDeployment) auditDiverged(name string) {
	fd.mu.Lock()
	fd.diverge[name]++
	bounce := fd.diverge[name] >= divergeBounce
	if bounce {
		fd.diverge[name] = 0
	}
	gen := fd.gens[name]
	fd.mu.Unlock()
	if !bounce {
		return
	}
	c := fd.reds[name].Client()
	// Log seam: the bounce decision is committed; a redialer resync may
	// land between here and bounceAt (the regression test parks here).
	fd.logf("chaostest: audit: switch %s table diverged %d consecutive checks, bouncing control channel", name, divergeBounce)
	fd.bounceAt(name, c, gen)
}

// bounceAt closes the control-channel client captured at the bounce
// decision unless the switch's generation has moved on — a moved
// generation means the channel already bounced (or resynced) and the
// captured decision is stale.
func (fd *FabricDeployment) bounceAt(name string, c *openflow.Client, gen uint64) {
	if c == nil {
		return
	}
	fd.mu.Lock()
	cur := fd.gens[name]
	fd.mu.Unlock()
	if cur != gen {
		fd.logf("chaostest: audit: switch %s resynced under the bounce (gen %d -> %d), skipping stale bounce", name, gen, cur)
		return
	}
	_ = c.Close()
}

// VerifyTables runs the semantic verifier (internal/verify) over every
// switch of both fabrics: the local model and the remote switches as
// programmed over their control channels. Each table must be free of
// equal-priority conflicts and shadowed rules, and each switch must carry
// a complete trunk band for the topology's participant ports. Chaos soaks
// call it at converged checkpoints — a resync that replayed bands in the
// wrong shape shows up here even if forwarding happens to agree.
func (fd *FabricDeployment) VerifyTables() error {
	rep := verify.Fabric(fd.Model, fd.topo)
	for _, name := range fd.names {
		es := fd.remote[name].Table().Entries()
		r := verify.Entries(es)
		for _, f := range r.Findings {
			f.Switch = "remote:" + name
			rep.Findings = append(rep.Findings, f)
		}
		rep.Rules += r.Rules
		for _, f := range verify.TrunkCoverage(fd.topo, name, es) {
			f.Switch = "remote:" + name
			rep.Findings = append(rep.Findings, f)
		}
	}
	return rep.Err()
}

// WaitConverged polls Converged until it holds on two consecutive checks
// or the timeout passes.
func (fd *FabricDeployment) WaitConverged(timeout time.Duration) error {
	_, err := waitConverged(fd.Net.Clock(), timeout, fd.Converged)
	return err
}

// WaitConvergedTimed is WaitConverged called at the moment a fault
// heals; on success the fault-heal → steady-state latency is recorded
// (virtual-clock) into the controller registry's ConvergeMetric.
func (fd *FabricDeployment) WaitConvergedTimed(timeout time.Duration) (time.Duration, error) {
	elapsed, err := waitConverged(fd.Net.Clock(), timeout, fd.Converged)
	if err == nil {
		fd.Ctrl.Metrics().Histogram(ConvergeMetric).Observe(int64(elapsed))
	}
	return elapsed, err
}

// WaitReconcileConvergedTimed is WaitConvergedTimed for audit-disabled
// runs: the same convergence condition, recorded into
// ReconcileConvergeMetric so reconciler-driven heal latencies are
// reported separately from audit-driven ones.
func (fd *FabricDeployment) WaitReconcileConvergedTimed(timeout time.Duration) (time.Duration, error) {
	elapsed, err := waitConverged(fd.Net.Clock(), timeout, fd.Converged)
	if err == nil {
		fd.Ctrl.Metrics().Histogram(ReconcileConvergeMetric).Observe(int64(elapsed))
	}
	return elapsed, err
}

// --- trunk transport ---------------------------------------------------------

// enqueue adapts a switch delivery callback to a bounded channel,
// dropping on overflow — a congested trunk loses packets, it does not
// stall the emitting switch's pipeline.
func enqueue(ch chan pkt.Packet) func(pkt.Packet) {
	return func(p pkt.Packet) {
		select {
		case ch <- p:
		default:
		}
	}
}

// runTrunk carries one trunk link over a sequence of simnet pipes: the
// A-side half carries tag, the B-side half tag+"-peer". Any transport
// error (reset, corrupted frame, teardown) drops the pipe and relinks
// after a short pause; the outbound channels persist across relinks, so
// only in-flight frames are lost.
func (fd *FabricDeployment) runTrunk(ctx context.Context, l fabric.Link, tag string, outA, outB chan pkt.Packet) {
	defer fd.wg.Done()
	for ctx.Err() == nil {
		ca, cb := fd.Net.Pipe(tag)
		var once sync.Once
		broken := make(chan struct{})
		fail := func() { once.Do(func() { close(broken) }) }
		var ewg sync.WaitGroup
		ewg.Add(4)
		go trunkWriter(&ewg, ca, outA, broken, fail)
		go trunkWriter(&ewg, cb, outB, broken, fail)
		go trunkReader(&ewg, ca, fd.remote[l.A], l.PortA, fail)
		go trunkReader(&ewg, cb, fd.remote[l.B], l.PortB, fail)
		select {
		case <-ctx.Done():
		case <-broken:
		}
		_ = ca.Close()
		_ = cb.Close()
		ewg.Wait()
		if ctx.Err() == nil {
			time.Sleep(20 * time.Millisecond)
		}
	}
}

func trunkWriter(wg *sync.WaitGroup, conn net.Conn, out <-chan pkt.Packet, broken <-chan struct{}, fail func()) {
	defer wg.Done()
	for {
		select {
		case <-broken:
			return
		case p := <-out:
			if err := writeTrunkFrame(conn, p); err != nil {
				fail()
				return
			}
		}
	}
}

func trunkReader(wg *sync.WaitGroup, conn net.Conn, sw *dataplane.Switch, in pkt.PortID, fail func()) {
	defer wg.Done()
	br := bufio.NewReader(conn)
	for {
		p, err := readTrunkFrame(br)
		if err != nil {
			fail()
			return
		}
		sw.Inject(in, p)
	}
}

// --- trunk frame codec -------------------------------------------------------

// The trunk frame format: a magic word and body length, then the located
// packet's header fields and payload. The magic catches stream desync
// after corruption, turning garbage into a relink instead of an endless
// stream of phantom packets.
const (
	trunkMagic    = 0x5d781f2a
	maxTrunkFrame = 1 << 16
)

func writeTrunkFrame(w io.Writer, p pkt.Packet) error {
	if len(p.Payload) > maxTrunkFrame-64 {
		return fmt.Errorf("chaostest: trunk frame payload too large (%d)", len(p.Payload))
	}
	body := make([]byte, 0, 35+len(p.Payload))
	body = binary.BigEndian.AppendUint32(body, uint32(p.InPort))
	src, dst := p.SrcMAC.Octets(), p.DstMAC.Octets()
	body = append(body, src[:]...)
	body = append(body, dst[:]...)
	body = binary.BigEndian.AppendUint16(body, p.EthType)
	body = binary.BigEndian.AppendUint32(body, uint32(p.SrcIP))
	body = binary.BigEndian.AppendUint32(body, uint32(p.DstIP))
	body = append(body, p.Proto)
	body = binary.BigEndian.AppendUint16(body, p.SrcPort)
	body = binary.BigEndian.AppendUint16(body, p.DstPort)
	body = binary.BigEndian.AppendUint32(body, uint32(len(p.Payload)))
	body = append(body, p.Payload...)

	frame := make([]byte, 0, 8+len(body))
	frame = binary.BigEndian.AppendUint32(frame, trunkMagic)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	_, err := w.Write(frame)
	return err
}

func readTrunkFrame(r io.Reader) (pkt.Packet, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return pkt.Packet{}, err
	}
	if binary.BigEndian.Uint32(hdr[:4]) != trunkMagic {
		return pkt.Packet{}, fmt.Errorf("chaostest: bad trunk frame magic")
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n < 35 || n > maxTrunkFrame {
		return pkt.Packet{}, fmt.Errorf("chaostest: bad trunk frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return pkt.Packet{}, err
	}
	var p pkt.Packet
	p.InPort = pkt.PortID(binary.BigEndian.Uint32(body[0:4]))
	var src, dst [6]byte
	copy(src[:], body[4:10])
	copy(dst[:], body[10:16])
	p.SrcMAC, p.DstMAC = pkt.MACFromOctets(src), pkt.MACFromOctets(dst)
	p.EthType = binary.BigEndian.Uint16(body[16:18])
	p.SrcIP = iputil.Addr(binary.BigEndian.Uint32(body[18:22]))
	p.DstIP = iputil.Addr(binary.BigEndian.Uint32(body[22:26]))
	p.Proto = body[26]
	p.SrcPort = binary.BigEndian.Uint16(body[27:29])
	p.DstPort = binary.BigEndian.Uint16(body[29:31])
	plen := binary.BigEndian.Uint32(body[31:35])
	if plen != n-35 {
		return pkt.Packet{}, fmt.Errorf("chaostest: trunk frame payload length mismatch")
	}
	if plen > 0 {
		p.Payload = body[35:]
	}
	return p, nil
}
