package chaostest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdx"
	"sdx/internal/dataplane"
	"sdx/internal/fabric"
	"sdx/internal/openflow"
	"sdx/internal/pkt"
	"sdx/internal/reconcile"
	"sdx/internal/simnet"
)

// twoSwitchTopo is the minimal fabric for harness-internal tests: two
// switches, one participant port each, one trunk link.
func twoSwitchTopo() fabric.Topology {
	return fabric.Topology{
		Switches: []string{"s1", "s2"},
		Ports:    map[pkt.PortID]string{1: "s1", 2: "s2"},
		Links:    []fabric.Link{{A: "s1", B: "s2", PortA: 100, PortB: 101}},
	}
}

// awaitCond polls cond until it holds or the deadline passes.
func awaitCond(t *testing.T, timeout time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// TestAuditBounceSkipsResyncedChannel is the regression test for the
// audit/reconciler race on a channel bounce mid-resync: the audit decides
// to bounce a diverged channel, but before it closes the client the
// channel dies and resyncs on its own (bumping the switch generation).
// The stale bounce must be skipped — closing the fresh client would tear
// down the resync that just healed the divergence. The test parks the
// audit at the log seam between the bounce decision and the close, forces
// the interleaving deterministically, and then re-runs the audit unparked
// to prove the bounce still fires when nothing intervenes.
func TestAuditBounceSkipsResyncedChannel(t *testing.T) {
	var armed atomic.Bool
	logBlocked := make(chan struct{})
	logRelease := make(chan struct{})
	var logMu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
		if strings.Contains(format, "bouncing control channel") && armed.CompareAndSwap(true, false) {
			close(logBlocked)
			<-logRelease
		}
	}
	logged := func(sub string) bool {
		logMu.Lock()
		defer logMu.Unlock()
		for _, l := range logs {
			if strings.Contains(l, sub) {
				return true
			}
		}
		return false
	}

	n := simnet.New(41)
	defer n.Close()
	fd, err := StartFabric(n, 41, nil, twoSwitchTopo(), Options{Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Stop()

	var c0 *openflow.Client
	awaitCond(t, 5*time.Second, "s1 control channel up", func() bool {
		c0 = fd.OFClient("s1")
		return c0 != nil
	})

	// Park the audit between its bounce decision and the close.
	fd.mu.Lock()
	fd.diverge["s1"] = divergeBounce - 1
	fd.mu.Unlock()
	armed.Store(true)
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		fd.auditDiverged("s1")
	}()
	<-logBlocked

	// While the audit is parked holding the captured (client, generation),
	// the channel dies and the redialer resyncs it: exactly the
	// interleaving that used to get the fresh channel bounced.
	_ = c0.Close()
	var c1 *openflow.Client
	awaitCond(t, 5*time.Second, "s1 control channel resync", func() bool {
		c1 = fd.OFClient("s1")
		return c1 != nil && c1 != c0
	})
	close(logRelease)
	<-auditDone

	if !logged("skipping stale bounce") {
		t.Fatalf("parked audit did not skip its stale bounce; logs:\n  %s", strings.Join(logs, "\n  "))
	}
	// The fresh channel must have survived the released audit.
	if err := c1.Barrier(); err != nil {
		t.Fatalf("fresh channel dead after stale audit released: %v", err)
	}
	if got := fd.OFClient("s1"); got != c1 {
		t.Fatalf("fresh channel was bounced by the stale audit (client changed)")
	}

	// Control: with no resync interleaved, the same decision must bounce
	// the live channel (the anti-entropy behaviour the audit exists for).
	fd.mu.Lock()
	fd.diverge["s1"] = divergeBounce - 1
	fd.mu.Unlock()
	fd.auditDiverged("s1")
	awaitCond(t, 5*time.Second, "audited channel bounce", func() bool {
		c := fd.OFClient("s1")
		return c != c1
	})
}

// TestFabricReconcileRepairsRemote drives the reconciler against a
// deliberately corrupted remote switch: the trunk band deleted (a trunk
// gap, the drift class that strands in-transit traffic) plus a foreign
// cookie installed. One pass must classify and repair both; after a
// barrier the next pass must be clean with zero repairs (idempotence) and
// the remote table byte-identical to the model.
func TestFabricReconcileRepairsRemote(t *testing.T) {
	specs := []PeerSpec{
		{AS: 100, Port: 1, Outbound: []sdx.Term{sdx.Fwd(sdx.MatchAll.DstPort(80), 200)}},
		{AS: 200, Port: 2, Anns: []Announcement{
			{Prefix: sdx.MustParsePrefix("11.0.0.0/8"), Path: []uint32{200}},
		}},
	}
	n := simnet.New(97)
	defer n.Close()
	fd, err := StartFabric(n, 97, specs, twoSwitchTopo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Stop()
	if err := fd.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, name := range fd.SwitchNames() {
		if err := fd.OFClient(name).Barrier(); err != nil {
			t.Fatalf("switch %s barrier: %v", name, err)
		}
	}
	if sum := fd.ReconcileOnce(); !sum.Clean {
		t.Fatalf("baseline pass not clean: %+v", sum)
	}

	// Corrupt s2 behind the controller's back.
	tbl := fd.remote["s2"].Table()
	if tbl.DeleteCookie(fabric.TrunkCookie) == 0 {
		t.Fatal("corruption removed no trunk entries")
	}
	tbl.AddBatch([]*dataplane.FlowEntry{{
		Priority: 7,
		Cookie:   4242,
		Actions:  []pkt.Action{pkt.Output(1)},
	}})

	sum := fd.ReconcileOnce()
	if sum.Clean || sum.Repairs == 0 {
		t.Fatalf("corruption pass found nothing: %+v", sum)
	}
	var s2 *reconcile.TargetSummary
	for i := range sum.Targets {
		if sum.Targets[i].Name == "s2" {
			s2 = &sum.Targets[i]
		}
	}
	if s2 == nil {
		t.Fatalf("no s2 target in summary: %+v", sum)
	}
	if s2.Drift.Missing == 0 || s2.Drift.Extra == 0 || s2.Drift.TrunkGaps == 0 {
		t.Fatalf("drift misclassified: %+v", s2.Drift)
	}
	if err := fd.OFClient("s2").Barrier(); err != nil {
		t.Fatalf("post-repair barrier: %v", err)
	}

	if sum := fd.ReconcileOnce(); !sum.Clean || sum.Repairs != 0 {
		t.Fatalf("repair not idempotent: %+v", sum)
	}
	model, remote := fd.ModelRules("s2"), fd.RemoteRules("s2")
	if strings.Join(model, "\n") != strings.Join(remote, "\n") {
		t.Fatalf("s2 not byte-identical after repair\n remote:\n  %s\n model:\n  %s",
			strings.Join(remote, "\n  "), strings.Join(model, "\n  "))
	}
}
