package simnet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestZeroFaultTransparency is the property-based byte-transparency
// check: with a zero profile, random payloads written through simnet in
// random chunkings must come out byte-identical and in order, exactly
// like net.Pipe — 500 seeded cases (run under -race in CI).
func TestZeroFaultTransparency(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := New(seed)
		c1, c2 := n.Pipe("t")

		payload := make([]byte, 1+rng.Intn(8192))
		rng.Read(payload)

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c1.Close()
			rest := payload
			for len(rest) > 0 {
				k := 1 + rng.Intn(len(rest))
				if _, err := c1.Write(rest[:k]); err != nil {
					t.Errorf("seed %d: write: %v", seed, err)
					return
				}
				rest = rest[k:]
			}
		}()

		got, err := io.ReadAll(c2)
		wg.Wait()
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("seed %d: corrupted transparent transfer (%d bytes in, %d out)", seed, len(payload), len(got))
		}
	}
}

// TestPipeEquivalence drives simnet and net.Pipe through the same
// scripted exchange and compares what each side reads.
func TestPipeEquivalence(t *testing.T) {
	exchange := func(a, b net.Conn) []byte {
		go func() {
			for _, msg := range []string{"open", "keepalive", "update-1", "update-2"} {
				if _, err := a.Write([]byte(msg)); err != nil {
					return
				}
			}
			a.Close()
		}()
		out, _ := io.ReadAll(b)
		return out
	}
	p1, p2 := net.Pipe()
	want := exchange(p1, p2)
	n := New(7)
	s1, s2 := n.Pipe("x")
	got := exchange(s1, s2)
	if !bytes.Equal(got, want) {
		t.Fatalf("simnet read %q, net.Pipe read %q", got, want)
	}
}

// TestDeadlineTimeout checks the net.Error/Timeout contract that the BGP
// hold timer depends on.
func TestDeadlineTimeout(t *testing.T) {
	n := New(1)
	_, c2 := n.Pipe("t")
	if err := c2.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := c2.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want os.ErrDeadlineExceeded, got %v", err)
	}
	// Clearing the deadline unblocks future reads.
	if err := c2.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c2.Read(make([]byte, 1)); err != io.EOF {
			t.Errorf("after close want EOF, got %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c1, _ := n.Pipe("u") // unrelated pair must not interfere
	_ = c1
	_, cPeer := n.Pipe("t2")
	_ = cPeer
	// Close the writer side: the blocked read must see EOF.
	pairs := n.pairsWithTag("t")
	pairs[0].Close()
	<-done
}

// TestReset aborts both ends mid-stream.
func TestReset(t *testing.T) {
	n := New(3)
	c1, c2 := n.Pipe("r")
	if _, err := c1.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := c2.Read(buf); err != nil {
				readErr <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if hit := n.Reset("r"); hit != 1 {
		t.Fatalf("Reset hit %d pairs, want 1", hit)
	}
	if err := <-readErr; !errors.Is(err, ErrReset) {
		t.Fatalf("reader got %v, want ErrReset", err)
	}
	if _, err := c1.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("writer got %v, want ErrReset", err)
	}
}

// TestPartitionBlackholesSilently: during a partition writes succeed but
// deliver nothing, and new dials fail; after heal traffic flows again.
func TestPartitionBlackholes(t *testing.T) {
	n := New(4)
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, c) }()
		}
	}()
	c, err := n.Dial("srv", "cl")
	if err != nil {
		t.Fatal(err)
	}
	n.PartitionAll()
	if _, err := c.Write([]byte("vanishes")); err != nil {
		t.Fatalf("partitioned write must succeed silently, got %v", err)
	}
	if _, err := n.Dial("srv", "cl2"); err == nil {
		t.Fatal("dial during partition must fail")
	}
	n.HealAll()
	if _, err := n.Dial("srv", "cl2"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	srv2, cl2 := n.Pipe("p")
	if _, err := cl2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(srv2, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("post-heal read %q, %v", buf, err)
	}
	ln.Close()
}

// TestStallDelaysDelivery: a stalled pair delivers nothing until the
// window passes, then everything.
func TestStallDelaysDelivery(t *testing.T) {
	n := New(5)
	c1, c2 := n.Pipe("s")
	n.Stall("s", 80*time.Millisecond)
	start := time.Now()
	if _, err := c1.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("stalled delivery took only %v", d)
	}
}

// TestCorruptionTaints: corruption flips bytes and marks the pair.
func TestCorruptionTaints(t *testing.T) {
	n := New(6)
	c1, c2 := n.Pipe("c")
	n.SetCorrupt("c", 64)
	payload := make([]byte, 4096)
	if _, err := c1.Write(payload); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	got, err := io.ReadAll(c2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("4KiB at mean-64 corruption came through clean")
	}
	sc := c1.(*Conn)
	if !sc.Tainted() {
		t.Fatal("corrupted pair not tainted")
	}
	if hit := n.ResetTainted(); hit != 1 {
		t.Fatalf("ResetTainted hit %d, want 1", hit)
	}
}

// TestShortWriteContract: a truncated write returns n < len(b) with a
// non-nil error, per the io.Writer contract, and delivers the prefix.
func TestShortWriteContract(t *testing.T) {
	n := New(8, WithProfile(Profile{ShortWriteEvery: 1}))
	c1, c2 := n.Pipe("w")
	payload := []byte("0123456789")
	wrote, err := c1.Write(payload)
	if err == nil && wrote < len(payload) {
		t.Fatal("short write with nil error")
	}
	if wrote < 1 || wrote > len(payload) {
		t.Fatalf("wrote %d", wrote)
	}
	if err != nil && !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("got %v, want io.ErrShortWrite", err)
	}
	c1.Close()
	got, _ := io.ReadAll(c2)
	if !bytes.Equal(got, payload[:wrote]) {
		t.Fatalf("delivered %q, want accepted prefix %q", got, payload[:wrote])
	}
}

// TestScheduleDeterminism replays the identical single-threaded workload
// on two networks with the same seed and a fault-heavy profile: the
// recorded traces and delivered bytes must match exactly.
func TestScheduleDeterminism(t *testing.T) {
	run := func(seed int64) ([]string, []byte) {
		n := New(seed, WithProfile(Profile{
			CorruptEvery:    200,
			ShortReadEvery:  3,
			ShortWriteEvery: 4,
			DropEvery:       5,
		}))
		c1, c2 := n.Pipe("d")
		wrng := rand.New(rand.NewSource(99))
		var delivered []byte
		buf := make([]byte, 512)
		for i := 0; i < 64; i++ {
			chunkLen := 1 + wrng.Intn(256)
			chunk := make([]byte, chunkLen)
			wrng.Read(chunk)
			rest := chunk
			for len(rest) > 0 {
				k, err := c1.Write(rest)
				if err != nil && !errors.Is(err, io.ErrShortWrite) {
					t.Fatal(err)
				}
				rest = rest[k:]
			}
			// Drain synchronously so read ops interleave deterministically.
			for {
				_ = c2.SetReadDeadline(time.Now().Add(time.Millisecond))
				k, err := c2.Read(buf)
				delivered = append(delivered, buf[:k]...)
				if err != nil {
					break
				}
			}
		}
		return n.Trace(), delivered
	}
	t1, b1 := run(42)
	t2, b2 := run(42)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed, different traces:\n%v\nvs\n%v", t1, t2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed, different delivered bytes")
	}
	if len(t1) == 0 {
		t.Fatal("fault-heavy profile recorded no events")
	}
	t3, _ := run(43)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestScriptDeterminism: the generated chaos schedule is a pure function
// of the seed and always includes the four required fault kinds — plus a
// directed partition whenever a target names its peer endpoint.
func TestScriptDeterminism(t *testing.T) {
	targets := []Target{
		{Tag: "rtr100", Peer: "rs"}, {Tag: "rtr200", Peer: "rs"},
		{Tag: "rtr300", Peer: "rs"}, {Tag: "ofctl", Peer: "switch"},
	}
	for _, seed := range []int64{1, 11, 23, 42, 1000} {
		a := GenScript(seed, targets)
		b := GenScript(seed, targets)
		if !reflect.DeepEqual(a.Trace(), b.Trace()) {
			t.Fatalf("seed %d: non-deterministic script", seed)
		}
		if got := len(a.Kinds()); got < 5 {
			t.Fatalf("seed %d: only %d fault kinds: %v", seed, got, a)
		}
		sawDir := false
		for _, st := range a.Steps {
			if st.Kind == StepStall && st.Dur <= time.Second {
				t.Fatalf("seed %d: stall %v not above the 1s hold floor", seed, st.Dur)
			}
			if st.Kind == StepPartitionDir {
				sawDir = true
				if st.Dur <= time.Second {
					t.Fatalf("seed %d: directed partition %v not above the 1s hold floor", seed, st.Dur)
				}
				if st.Tag == "" || st.To == "" {
					t.Fatalf("seed %d: directed partition missing endpoints: %v", seed, st)
				}
			}
		}
		if !sawDir {
			t.Fatalf("seed %d: no directed partition despite directed-capable targets:\n%v", seed, a)
		}
	}
	if reflect.DeepEqual(GenScript(1, targets).Trace(), GenScript(2, targets).Trace()) {
		t.Fatal("different seeds produced identical scripts")
	}
	// Tag-only targets keep the symmetric four-kind vocabulary.
	bare := GenScript(3, Targets("a", "b"))
	for _, st := range bare.Steps {
		if st.Kind == StepPartitionDir || st.Kind == StepHealDir {
			t.Fatalf("directed step generated without any Peer endpoint: %v", st)
		}
	}
	if got := len(bare.Kinds()); got < 4 {
		t.Fatalf("tag-only script has only %d fault kinds", got)
	}
}

// TestLatencyAndClock: virtual latency scales through the clock.
func TestLatencyAndClock(t *testing.T) {
	n := New(9, WithProfile(Profile{Latency: 500 * time.Millisecond}), WithTimeScale(10))
	c1, c2 := n.Pipe("l")
	start := time.Now()
	if _, err := c1.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if d < 30*time.Millisecond || d > 300*time.Millisecond {
		t.Fatalf("500ms virtual latency at scale 10 took %v", d)
	}
}

// TestListenerLifecycle: accept blocks, dial connects, close unblocks.
func TestListenerLifecycle(t *testing.T) {
	n := New(10)
	ln, err := n.Listen("ep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("ep"); err == nil {
		t.Fatal("duplicate listen must fail")
	}
	got := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(got)
			return
		}
		got <- c
	}()
	cl, err := n.Dial("ep", "c")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-got
	if srv == nil {
		t.Fatal("accept failed")
	}
	if _, err := cl.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(srv, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("%q %v", buf, err)
	}
	ln.Close()
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept after close must fail")
	}
	if _, err := n.Dial("ep", "c"); err == nil {
		t.Fatal("dial after listener close must fail")
	}
}
