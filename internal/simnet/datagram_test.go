package simnet

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// sendSeq sends n datagrams carrying their sequence number.
func sendSeq(t *testing.T, c *DatagramConn, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(i))
		if err := c.Send(b[:]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

// recvAll drains datagrams until EOF (after the sender closes) or the
// deadline, returning the received sequence numbers in arrival order.
func recvAll(t *testing.T, c *DatagramConn, deadline time.Duration) []uint32 {
	t.Helper()
	c.SetRecvDeadline(time.Now().Add(deadline))
	var got []uint32
	for {
		b, err := c.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, os.ErrDeadlineExceeded) {
				return got
			}
			t.Fatalf("recv: %v", err)
		}
		got = append(got, binary.BigEndian.Uint32(b))
	}
}

// TestDatagramEventualDelivery is the satellite's delivery property:
// with reordering (but no drops) every sent datagram arrives exactly
// once, in *some* order, and for a reordering profile at least one seed
// actually delivers out of send order — the fault is observable, not
// just scheduled.
func TestDatagramEventualDelivery(t *testing.T) {
	reordered := false
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		n := New(seed, WithProfile(Profile{
			Latency:      time.Millisecond,
			ReorderEvery: 4,
			ReorderDelay: 20 * time.Millisecond,
		}))
		a, b := n.DatagramPipe("probe")
		const count = 64
		sendSeq(t, a, count)
		if err := a.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		got := recvAll(t, b, 5*time.Second)
		if len(got) != count {
			t.Fatalf("seed %d: got %d datagrams, want %d", seed, len(got), count)
		}
		seen := make(map[uint32]bool, count)
		inOrder := true
		for i, s := range got {
			if seen[s] {
				t.Fatalf("seed %d: datagram %d delivered twice", seed, s)
			}
			seen[s] = true
			if uint32(i) != s {
				inOrder = false
			}
		}
		if !inOrder {
			reordered = true
		}
		n.Close()
	}
	if !reordered {
		t.Fatalf("no seed produced an out-of-order delivery; reordering fault is inert")
	}
}

// TestDatagramScheduleDeterminism replays the same seed twice and
// asserts the fault *schedule* — which send ops were dropped and which
// were held back, per direction — is byte-identical. Delivery timing
// rides the wall clock so arrival order is not asserted here; the
// schedule is the reproducibility contract (see the package doc).
func TestDatagramScheduleDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		n := New(seed, WithProfile(Profile{
			DropEvery:    5,
			ReorderEvery: 3,
			ReorderDelay: 10 * time.Millisecond,
		}))
		defer n.Close()
		a, b := n.DatagramPipe("probe")
		const count = 200
		sendSeq(t, a, count)
		for i := 0; i < count; i++ { // reverse direction has its own stream
			if err := b.Send([]byte{byte(i)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		var sched []string
		for _, ev := range n.Trace() {
			if strings.Contains(ev, "dgram-") {
				sched = append(sched, ev)
			}
		}
		if len(sched) == 0 {
			t.Fatalf("no fault events recorded")
		}
		return sched
	}
	first, second := run(42), run(42)
	if len(first) != len(second) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule diverges at %d:\n  %s\n  %s", i, first[i], second[i])
		}
	}
	if other := run(43); len(other) == len(first) {
		same := true
		for i := range other {
			if other[i] != first[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("seeds 42 and 43 produced identical schedules; seeding is inert")
		}
	}
}

// TestDatagramDirectedPartition severs one direction of a datagram pipe
// and shows sends that way vanish silently while the reverse keeps
// delivering — then heals and shows delivery resumes.
func TestDatagramDirectedPartition(t *testing.T) {
	n := New(7)
	defer n.Close()
	a, b := n.DatagramPipe("probe")

	n.PartitionDir("probe", "probe-peer")
	if err := a.Send([]byte("lost")); err != nil {
		t.Fatalf("send into partition: %v", err)
	}
	if err := b.Send([]byte("heard")); err != nil {
		t.Fatalf("reverse send: %v", err)
	}
	a.SetRecvDeadline(time.Now().Add(2 * time.Second))
	if msg, err := a.Recv(); err != nil || string(msg) != "heard" {
		t.Fatalf("reverse direction: got %q, %v", msg, err)
	}
	b.SetRecvDeadline(time.Now().Add(50 * time.Millisecond))
	if msg, err := b.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned direction delivered %q, %v", msg, err)
	}

	n.HealDir("probe", "probe-peer")
	if err := a.Send([]byte("healed")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	b.SetRecvDeadline(time.Now().Add(2 * time.Second))
	if msg, err := b.Recv(); err != nil || string(msg) != "healed" {
		t.Fatalf("after heal: got %q, %v", msg, err)
	}
}

// TestDatagramLifecycle covers the close contract: peer drains buffered
// datagrams then sees EOF; the closed end's own Recv fails immediately;
// Send on a closed pipe errors.
func TestDatagramLifecycle(t *testing.T) {
	n := New(11)
	defer n.Close()
	a, b := n.DatagramPipe("p")

	if err := a.Send([]byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := a.Send([]byte("y")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := a.Recv(); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("recv on closed end: %v", err)
	}
	b.SetRecvDeadline(time.Now().Add(2 * time.Second))
	if msg, err := b.Recv(); err != nil || string(msg) != "x" {
		t.Fatalf("drain: got %q, %v", msg, err)
	}
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v", err)
	}
}

// TestDatagramConcurrent hammers a pipe from concurrent senders while a
// reader drains, for the -race -count=5 satellite requirement. The
// cross-goroutine arrival order is unspecified; only exactly-once
// delivery of every datagram is asserted.
func TestDatagramConcurrent(t *testing.T) {
	n := New(13, WithProfile(Profile{ReorderEvery: 6, ReorderDelay: 2 * time.Millisecond}))
	defer n.Close()
	a, b := n.DatagramPipe("c")

	const senders, per = 4, 50
	done := make(chan struct{})
	for g := 0; g < senders; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				var buf [8]byte
				binary.BigEndian.PutUint32(buf[:4], uint32(g))
				binary.BigEndian.PutUint32(buf[4:], uint32(i))
				if err := a.Send(buf[:]); err != nil {
					t.Errorf("send: %v", err)
					break
				}
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < senders; g++ {
		<-done
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b.SetRecvDeadline(time.Now().Add(10 * time.Second))
	seen := make(map[uint64]bool)
	for {
		msg, err := b.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		key := binary.BigEndian.Uint64(msg)
		if seen[key] {
			t.Fatalf("duplicate datagram %x", key)
		}
		seen[key] = true
	}
	if len(seen) != senders*per {
		t.Fatalf("received %d datagrams, want %d", len(seen), senders*per)
	}
}
