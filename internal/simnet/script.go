package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// StepKind enumerates scripted network control operations.
type StepKind uint8

// Script step kinds, in tie-break order.
const (
	StepReset StepKind = iota
	StepStall
	StepCorruptOn
	StepCorruptOff
	StepPartition
	StepHeal
	StepPartitionDir
	StepHealDir
)

func (k StepKind) String() string {
	switch k {
	case StepReset:
		return "reset"
	case StepStall:
		return "stall"
	case StepCorruptOn:
		return "corrupt-on"
	case StepCorruptOff:
		return "corrupt-off"
	case StepPartition:
		return "partition"
	case StepHeal:
		return "heal"
	case StepPartitionDir:
		return "partition-dir"
	case StepHealDir:
		return "heal-dir"
	}
	return fmt.Sprintf("step(%d)", uint8(k))
}

// Step is one scripted fault at a virtual offset from script start.
type Step struct {
	At   time.Duration
	Kind StepKind
	Tag  string        // target connection tag; for directed partitions, the from endpoint; "" targets the whole network
	To   string        // directed partitions: the to endpoint
	Dur  time.Duration // stall window length
	Mean int64         // corrupt-on: mean bytes between bit flips
}

// String renders the step deterministically.
func (s Step) String() string {
	out := fmt.Sprintf("t=%s %s", s.At, s.Kind)
	if s.Tag != "" {
		out += " tag=" + s.Tag
	}
	if s.To != "" {
		out += " to=" + s.To
	}
	if s.Dur > 0 {
		out += fmt.Sprintf(" dur=%s", s.Dur)
	}
	if s.Mean > 0 {
		out += fmt.Sprintf(" mean=%d", s.Mean)
	}
	return out
}

// Script is a deterministic fault schedule: the same seed always yields
// the same steps, which is the reproducibility contract the chaos harness
// asserts (and prints on failure, so any soak failure is one `-seed` away
// from a local repro).
type Script struct {
	Seed  int64
	Steps []Step
}

// Trace renders the schedule, one line per step.
func (s *Script) Trace() []string {
	out := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		out[i] = st.String()
	}
	return out
}

// String renders the whole schedule.
func (s *Script) String() string {
	return fmt.Sprintf("script seed=%d\n  %s", s.Seed, strings.Join(s.Trace(), "\n  "))
}

// Run applies the schedule to a network, sleeping virtual offsets scaled
// through the network's clock. It returns early if ctx is cancelled.
func (s *Script) Run(ctx context.Context, n *Network) error {
	start := time.Now()
	for _, st := range s.Steps {
		wait := n.clock.Real(st.At) - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			t.Stop()
		}
		switch st.Kind {
		case StepReset:
			n.Reset(st.Tag)
		case StepStall:
			n.Stall(st.Tag, st.Dur)
		case StepCorruptOn:
			n.SetCorrupt(st.Tag, st.Mean)
		case StepCorruptOff:
			n.SetCorrupt(st.Tag, 0)
		case StepPartition:
			n.PartitionAll()
		case StepHeal:
			n.HealAll()
		case StepPartitionDir:
			n.PartitionDir(st.Tag, st.To)
		case StepHealDir:
			n.HealDir(st.Tag, st.To)
		}
	}
	return nil
}

// Kinds returns the distinct fault kinds the script injects (corrupt-off
// and heal count with their opening step).
func (s *Script) Kinds() []StepKind {
	seen := map[StepKind]bool{}
	var out []StepKind
	for _, st := range s.Steps {
		k := st.Kind
		if k == StepCorruptOff {
			k = StepCorruptOn
		}
		if k == StepHeal {
			k = StepPartition
		}
		if k == StepHealDir {
			k = StepPartitionDir
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Target names one faultable session for GenScript: the connection tag
// the client dials with, and the endpoint name it dials (the listener
// name, or tag+"-peer" for Pipe pairs). Peer may be empty, which
// excludes the target from directed-partition steps.
type Target struct {
	Tag  string
	Peer string
}

// Targets builds a directed-fault-free target list from bare tags,
// for callers that only want the symmetric fault vocabulary.
func Targets(tags ...string) []Target {
	out := make([]Target, len(tags))
	for i, t := range tags {
		out[i] = Target{Tag: t}
	}
	return out
}

// GenScript derives a chaos schedule from a seed over the given targets.
// Every schedule injects at least four distinct fault kinds — a
// mid-stream reset, a corruption window, a delivery stall and a global
// partition — with seed-chosen targets, offsets and window lengths; when
// any target names its peer endpoint, the schedule also always includes
// a directed partition (one direction blackholed, seed-chosen) so
// half-open sessions are exercised. The stall and partition windows
// always exceed one second so that at least one established session's
// hold timer (floor 1s on the wire) expires.
func GenScript(seed int64, targets []Target) *Script {
	if len(targets) == 0 {
		panic("simnet: GenScript needs at least one target")
	}
	rng := rand.New(rand.NewSource(mix(seed, 0x5eed, 2)))
	pick := func() string { return targets[rng.Intn(len(targets))].Tag }
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo)) * time.Millisecond
	}
	var directed []Target
	for _, t := range targets {
		if t.Peer != "" {
			directed = append(directed, t)
		}
	}

	steps := []Step{
		{At: ms(50, 150), Kind: StepReset, Tag: pick()},
		{At: ms(200, 300), Kind: StepCorruptOn, Tag: pick(), Dur: ms(300, 500), Mean: 120 + rng.Int63n(160)},
		{At: ms(350, 450), Kind: StepStall, Tag: pick(), Dur: ms(1300, 1600)},
	}
	if len(directed) > 0 {
		t := directed[rng.Intn(len(directed))]
		from, to := t.Tag, t.Peer
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		steps = append(steps, Step{At: ms(400, 550), Kind: StepPartitionDir, Tag: from, To: to, Dur: ms(1300, 1600)})
	}
	steps = append(steps, Step{At: ms(550, 650), Kind: StepPartition, Dur: ms(1400, 1700)})
	if rng.Intn(2) == 0 {
		steps = append(steps, Step{At: ms(350, 500), Kind: StepReset, Tag: pick()})
	}

	// Materialize the closing edge of every window.
	var closers []Step
	for _, st := range steps {
		switch st.Kind {
		case StepCorruptOn:
			closers = append(closers, Step{At: st.At + st.Dur, Kind: StepCorruptOff, Tag: st.Tag})
		case StepPartition:
			closers = append(closers, Step{At: st.At + st.Dur, Kind: StepHeal})
		case StepPartitionDir:
			closers = append(closers, Step{At: st.At + st.Dur, Kind: StepHealDir, Tag: st.Tag, To: st.To})
		}
	}
	steps = append(steps, closers...)
	sort.SliceStable(steps, func(i, j int) bool {
		a, b := steps[i], steps[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.To < b.To
	})
	return &Script{Seed: seed, Steps: steps}
}

// End returns the virtual time of the script's last step.
func (s *Script) End() time.Duration {
	var end time.Duration
	for _, st := range s.Steps {
		if st.At > end {
			end = st.At
		}
	}
	return end
}
