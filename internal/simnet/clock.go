package simnet

import "time"

// Clock maps virtual durations onto wall-clock durations by a constant
// scale factor, letting fault schedules be written in protocol-meaningful
// time (seconds of latency, minutes of partition) and executed
// compressed. Scale 10 runs ten times faster than real time; scale <= 0
// or 1 is identity. The zero-value/nil clock is identity too, so an
// unconfigured network behaves like real time.
type Clock struct {
	scale float64
	start time.Time
}

// NewClock returns a clock with the given compression factor.
func NewClock(scale float64) *Clock {
	return &Clock{scale: scale, start: time.Now()}
}

// Scale returns the compression factor (1 for identity).
func (c *Clock) Scale() float64 {
	if c == nil || c.scale <= 0 {
		return 1
	}
	return c.scale
}

// Real converts a virtual duration to the wall-clock duration to wait.
func (c *Clock) Real(d time.Duration) time.Duration {
	if s := c.Scale(); s != 1 {
		return time.Duration(float64(d) / s)
	}
	return d
}

// Virtual converts elapsed wall-clock time into virtual time.
func (c *Clock) Virtual(d time.Duration) time.Duration {
	if s := c.Scale(); s != 1 {
		return time.Duration(float64(d) * s)
	}
	return d
}

// Now returns the current virtual time since the clock was created.
func (c *Clock) Now() time.Duration {
	if c == nil {
		return 0
	}
	return c.Virtual(time.Since(c.start))
}
