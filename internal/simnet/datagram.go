package simnet

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"
)

// defaultReorderDelay is how long a held-back datagram lags when the
// profile leaves ReorderDelay zero.
const defaultReorderDelay = 30 * time.Millisecond

// DatagramPipe returns a directly connected unreliable-datagram pair:
// message boundaries are preserved, delivery is best-effort (profile
// drops and partitions silently eat datagrams, there is no backpressure
// and no EOF-before-drain guarantee), and the profile's ReorderEvery
// fault can deliver datagrams out of send order. It is the transport the
// liveness prober runs on in tests — a probe packet is exactly the kind
// of traffic that must survive loss and reordering without either being
// masked by a stream abstraction.
//
// Fault targeting mirrors Pipe: the first conn's endpoint name is the
// tag and the second's is tag+"-peer", so PartitionDir(tag, tag+"-peer")
// silently eats one direction while the reverse keeps delivering.
func (n *Network) DatagramPipe(tag string) (*DatagramConn, *DatagramConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextID
	n.nextID++
	remote := tag + "-peer"

	ab := newDHalf(n, n.prof, mix(n.seed, id, 0), fmt.Sprintf("%s#%d>", tag, id))
	ba := newDHalf(n, n.prof, mix(n.seed, id, 1), fmt.Sprintf("%s#%d<", tag, id))
	ab.blackholed = func() bool { return n.blackholedDir(tag, tag, remote) }
	ba.blackholed = func() bool { return n.blackholedDir(tag, remote, tag) }

	c1 := &DatagramConn{n: n, id: id, tag: tag, rd: ba, wr: ab,
		local: simAddr(tag), remote: simAddr(remote)}
	c2 := &DatagramConn{n: n, id: id, tag: tag, rd: ab, wr: ba,
		local: simAddr(remote), remote: simAddr(tag)}
	c1.readDL.init()
	c2.readDL.init()
	n.dgrams = append(n.dgrams, c1)
	return c1, c2
}

// DatagramConn is one end of an unreliable datagram pipe. Send never
// blocks and never reports loss; Recv blocks until a datagram is due,
// the read deadline expires, or the peer closes with nothing buffered.
type DatagramConn struct {
	n   *Network
	id  int
	tag string

	rd, wr *dhalf

	readDL        deadline
	local, remote simAddr
	closeOnce     sync.Once
}

// Tag returns the fault-targeting tag the pipe was created with.
func (c *DatagramConn) Tag() string { return c.tag }

// LocalAddr returns this end's endpoint name.
func (c *DatagramConn) LocalAddr() string { return string(c.local) }

// RemoteAddr returns the peer's endpoint name.
func (c *DatagramConn) RemoteAddr() string { return string(c.remote) }

// Send queues one datagram toward the peer. The boundary is preserved:
// the peer receives exactly this payload or nothing (dropped datagrams
// vanish silently — the unreliable contract). The only errors are
// lifecycle ones (closed pipe, reset network).
func (c *DatagramConn) Send(b []byte) error { return c.wr.send(b) }

// Recv returns the next due datagram. Held-back (reordered) datagrams
// surface after their extra delay, which may be after datagrams sent
// later. Returns io.EOF once the peer has closed and the buffer is
// drained, os.ErrDeadlineExceeded past the read deadline.
func (c *DatagramConn) Recv() ([]byte, error) { return c.rd.recv(&c.readDL) }

// SetRecvDeadline bounds future (and pending) Recv calls. The zero time
// clears it.
func (c *DatagramConn) SetRecvDeadline(t time.Time) { c.readDL.set(t) }

// Close closes this end: our Recv fails, the peer drains then sees EOF.
func (c *DatagramConn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWriter()
		c.rd.closeReader()
	})
	return nil
}

// closePair tears down both directions (network teardown).
func (c *DatagramConn) closePair() {
	c.rd.closeWriter()
	c.rd.closeReader()
	c.wr.closeWriter()
	c.wr.closeReader()
}

// dgram is one in-flight datagram.
type dgram struct {
	data []byte
	due  time.Time
	seq  int64
}

// dhalf is one direction of a datagram pipe. Unlike the stream half it
// buffers whole datagrams sorted by delivery time, so a held-back
// datagram is naturally overtaken by later, earlier-due ones.
type dhalf struct {
	n          *Network
	clock      *Clock
	prof       Profile
	label      string
	blackholed func() bool

	mu                    sync.Mutex
	rng                   *rand.Rand
	notify                chan struct{} // closed and replaced on every state change
	buf                   []dgram       // sorted by (due, seq)
	seq                   int64
	sOps                  int64
	nextDrop, nextReorder int64 // op indices, -1 = disabled
	wClosed, rClosed      bool
}

func newDHalf(n *Network, prof Profile, seed int64, label string) *dhalf {
	h := &dhalf{
		n: n, clock: n.clock, prof: prof, label: label,
		rng: rand.New(rand.NewSource(seed)), notify: make(chan struct{}),
		blackholed: func() bool { return false },
		nextDrop:   -1, nextReorder: -1,
	}
	if prof.DropEvery > 0 {
		h.nextDrop = h.draw(prof.DropEvery)
	}
	if prof.ReorderEvery > 0 {
		h.nextReorder = h.draw(prof.ReorderEvery)
	}
	return h
}

// draw matches half.draw: uniform on [1, 2*mean).
func (h *dhalf) draw(mean int64) int64 {
	if mean < 1 {
		mean = 1
	}
	return 1 + h.rng.Int63n(2*mean-1)
}

func (h *dhalf) broadcastLocked() {
	close(h.notify)
	h.notify = make(chan struct{})
}

func (h *dhalf) send(b []byte) error {
	h.mu.Lock()
	if h.wClosed || h.rClosed {
		h.mu.Unlock()
		return io.ErrClosedPipe
	}
	op := h.sOps
	h.sOps++

	// All fault decisions draw from the rng in send order, so the fault
	// *schedule* (which ops drop, which ops are held) is a pure function
	// of (seed, pipe creation index, direction, op index) — the property
	// the determinism test asserts via the trace.
	drop := h.blackholed()
	if h.nextDrop >= 0 && op >= h.nextDrop {
		h.nextDrop = op + h.draw(h.prof.DropEvery)
		h.trace("dgram-drop op=%d len=%d", op, len(b))
		drop = true
	}
	if drop {
		h.mu.Unlock()
		return nil
	}

	lat := h.prof.Latency
	if h.prof.Jitter > 0 {
		lat += time.Duration(h.rng.Int63n(int64(h.prof.Jitter)))
	}
	if h.nextReorder >= 0 && op >= h.nextReorder {
		h.nextReorder = op + h.draw(h.prof.ReorderEvery)
		hold := h.prof.ReorderDelay
		if hold <= 0 {
			hold = defaultReorderDelay
		}
		lat += hold
		h.trace("dgram-reorder op=%d hold=%s", op, hold)
	}

	d := dgram{
		data: append([]byte(nil), b...),
		due:  time.Now().Add(h.clock.Real(lat)),
		seq:  op,
	}
	// Insert sorted by (due, seq): the earliest-due datagram delivers
	// first, which is exactly how a held-back one gets overtaken.
	i := sort.Search(len(h.buf), func(i int) bool {
		if h.buf[i].due.Equal(d.due) {
			return h.buf[i].seq > d.seq
		}
		return h.buf[i].due.After(d.due)
	})
	h.buf = append(h.buf, dgram{})
	copy(h.buf[i+1:], h.buf[i:])
	h.buf[i] = d
	h.broadcastLocked()
	h.mu.Unlock()
	return nil
}

func (h *dhalf) recv(dl *deadline) ([]byte, error) {
	for {
		h.mu.Lock()
		if h.rClosed {
			h.mu.Unlock()
			return nil, io.ErrClosedPipe
		}
		if isClosedChan(dl.wait()) {
			h.mu.Unlock()
			return nil, os.ErrDeadlineExceeded
		}
		if len(h.buf) > 0 {
			due := h.buf[0].due
			now := time.Now()
			if !due.After(now) {
				d := h.buf[0]
				h.buf = h.buf[1:]
				h.mu.Unlock()
				return d.data, nil
			}
			notify := h.notify
			h.mu.Unlock()
			t := time.NewTimer(due.Sub(now))
			select {
			case <-t.C:
			case <-notify:
			case <-dl.wait():
			}
			t.Stop()
			continue
		}
		if h.wClosed {
			h.mu.Unlock()
			return nil, io.EOF
		}
		notify := h.notify
		h.mu.Unlock()
		select {
		case <-notify:
		case <-dl.wait():
		}
	}
}

func (h *dhalf) trace(format string, args ...any) {
	h.n.record(h.label+" "+format, args...)
}

func (h *dhalf) closeWriter() {
	h.mu.Lock()
	if !h.wClosed {
		h.wClosed = true
		h.broadcastLocked()
	}
	h.mu.Unlock()
}

func (h *dhalf) closeReader() {
	h.mu.Lock()
	if !h.rClosed {
		h.rClosed = true
		h.buf = nil
		h.broadcastLocked()
	}
	h.mu.Unlock()
}
