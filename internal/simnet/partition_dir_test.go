package simnet

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPartitionDirOneWay: a directed partition blackholes exactly one
// direction of a pair; the reverse keeps flowing, and heal restores both.
func TestPartitionDirOneWay(t *testing.T) {
	n := New(20)
	c1, c2 := n.Pipe("x")
	n.PartitionDir("x", "x-peer")

	if _, err := c1.Write([]byte("gone")); err != nil {
		t.Fatalf("blackholed write must succeed silently, got %v", err)
	}
	_ = c2.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if k, err := c2.Read(make([]byte, 4)); err == nil {
		t.Fatalf("read got %d bytes through a directed partition", k)
	}

	// The reverse direction is untouched: c2 can still speak to c1.
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	_ = c1.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c1, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("reverse read %q, %v", buf, err)
	}

	n.HealDir("x", "x-peer")
	_ = c2.SetReadDeadline(time.Time{})
	if _, err := c1.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf4 := make([]byte, 4)
	if _, err := io.ReadFull(c2, buf4); err != nil || string(buf4) != "back" {
		t.Fatalf("post-heal read %q, %v", buf4, err)
	}
}

// TestPartitionDirDialedConn: directed partitions follow the dial-tag /
// listener-name endpoints of a dialed connection — sever the server's
// speaking direction and the client's bytes still arrive.
func TestPartitionDirDialedConn(t *testing.T) {
	n := New(23)
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(got)
			return
		}
		got <- c
	}()
	cl, err := n.Dial("srv", "cl")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-got
	if srv == nil {
		t.Fatal("accept failed")
	}

	n.PartitionDir("srv", "cl") // the server can hear but not speak

	if _, err := srv.Write([]byte("mute")); err != nil {
		t.Fatalf("blackholed server write must succeed silently, got %v", err)
	}
	_ = cl.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if k, err := cl.Read(make([]byte, 4)); err == nil {
		t.Fatalf("client read %d bytes from a mute server", k)
	}
	if _, err := cl.Write([]byte("hear")); err != nil {
		t.Fatal(err)
	}
	_ = srv.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(srv, buf); err != nil || string(buf) != "hear" {
		t.Fatalf("server read %q, %v", buf, err)
	}
}

// TestPartitionDirBlocksDials: while either direction between two
// endpoints is severed, new dials between them fail (a handshake needs
// both directions); unrelated tags still connect.
func TestPartitionDirBlocksDials(t *testing.T) {
	n := New(22)
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	n.PartitionDir("cl", "srv")
	if _, err := n.Dial("srv", "cl"); err == nil {
		t.Fatal("dial through a forward directed partition must fail")
	}
	if _, err := n.Dial("srv", "other"); err != nil {
		t.Fatalf("unrelated tag must still dial: %v", err)
	}
	n.HealDir("cl", "srv")

	n.PartitionDir("srv", "cl")
	if _, err := n.Dial("srv", "cl"); err == nil {
		t.Fatal("dial through a reverse directed partition must fail")
	}
	n.HealDir("srv", "cl")

	if _, err := n.Dial("srv", "cl"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

// TestDialPartitionRace: dials racing Partition*/Heal* either fail or
// yield a fully delivered pair — every successful dial is matched by an
// accepted conn (no half-open leaks), and the storm leaks no goroutines.
func TestDialPartitionRace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	n := New(21)
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			_ = c.Close()
		}
	}()

	var ok atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := n.Dial("srv", "cl")
				if err == nil {
					ok.Add(1)
					_ = c.Close()
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	// Land symmetric and directed partitions mid-storm, with healed
	// windows in between, then leave the network healed for a grace
	// window so the storm records successes before it stops.
	for i := 0; i < 40; i++ {
		n.PartitionTag("cl")
		time.Sleep(100 * time.Microsecond)
		n.HealTag("cl")
		time.Sleep(100 * time.Microsecond)
		n.PartitionDir("cl", "srv")
		time.Sleep(100 * time.Microsecond)
		n.HealDir("cl", "srv")
		time.Sleep(100 * time.Microsecond)
	}
	for deadline := time.Now().Add(5 * time.Second); ok.Load() == 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Every successful dial must surface on the accept side: drain until
	// the counts match. A half-open leak stalls this forever.
	deadline := time.Now().Add(5 * time.Second)
	for accepted.Load() < ok.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("%d dials succeeded but only %d conns accepted — half-open leak",
				ok.Load(), accepted.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if accepted.Load() != ok.Load() {
		t.Fatalf("accepted %d != dialed %d", accepted.Load(), ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("storm made no successful dials; partitions were never lifted?")
	}

	// A dial with the partition held must fail deterministically.
	n.PartitionTag("cl")
	if _, err := n.Dial("srv", "cl"); err == nil {
		t.Fatal("dial under a held partition must fail")
	}
	n.HealTag("cl")

	ln.Close()
	<-acceptDone
	n.Close()
	for deadline := time.Now().Add(5 * time.Second); runtime.NumGoroutine() > baseline+3; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d at start, %d after storm", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
