package router_test

import (
	"testing"

	"sdx/internal/core"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/router"
)

func newExchange(t *testing.T) (*core.Controller, *router.BorderRouter, *router.BorderRouter) {
	t.Helper()
	ctrl := core.NewController()
	for _, cfg := range []core.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []core.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []core.PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	a, err := router.Attach(ctrl, 100, core.PhysicalPort{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := router.Attach(ctrl, 200, core.PhysicalPort{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, a, b
}

func TestAttachValidation(t *testing.T) {
	ctrl := core.NewController()
	ctrl.AddParticipant(core.ParticipantConfig{AS: 100, Name: "A", Ports: []core.PhysicalPort{{ID: 1}}})
	if _, err := router.Attach(ctrl, 999, core.PhysicalPort{ID: 1}); err == nil {
		t.Fatal("unknown AS must fail")
	}
	if _, err := router.Attach(ctrl, 100, core.PhysicalPort{ID: 9}); err == nil {
		t.Fatal("foreign port must fail")
	}
	r, err := router.Attach(ctrl, 100, core.PhysicalPort{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.AS() != 100 || r.Port().ID != 1 {
		t.Fatalf("identity: %d %d", r.AS(), r.Port().ID)
	}
}

func TestFIBFollowsAnnounceWithdraw(t *testing.T) {
	_, a, b := newExchange(t)
	p := iputil.MustParsePrefix("20.0.0.0/8")
	b.Announce(p)
	if a.FIBLen() != 1 {
		t.Fatalf("FIBLen = %d", a.FIBLen())
	}
	nh, ok := a.Lookup(iputil.MustParseAddr("20.1.2.3"))
	if !ok || nh != core.PortIP(2) {
		t.Fatalf("Lookup = %v %v", nh, ok)
	}
	b.Withdraw(p)
	if a.FIBLen() != 0 {
		t.Fatalf("FIBLen after withdraw = %d", a.FIBLen())
	}
	if _, ok := a.Lookup(iputil.MustParseAddr("20.1.2.3")); ok {
		t.Fatal("route should be gone")
	}
}

func TestSendResolvesThroughARP(t *testing.T) {
	_, a, b := newExchange(t)
	b.Announce(iputil.MustParsePrefix("20.0.0.0/8"))
	if !a.SendIPv4(iputil.MustParseAddr("10.0.0.1"), iputil.MustParseAddr("20.0.0.9"), 1, 80, []byte("x")) {
		t.Fatal("send should succeed")
	}
	got := b.Received()
	if len(got) != 1 {
		t.Fatalf("B received %d packets", len(got))
	}
	if got[0].SrcMAC != core.PortMAC(1) || got[0].DstMAC != core.PortMAC(2) {
		t.Fatalf("MACs: %v -> %v", got[0].SrcMAC, got[0].DstMAC)
	}
	if got[0].EthType != pkt.EthTypeIPv4 || string(got[0].Payload) != "x" {
		t.Fatalf("packet: %v", got[0])
	}
	b.ClearReceived()
	if len(b.Received()) != 0 {
		t.Fatal("ClearReceived failed")
	}
}

func TestSendWithoutRouteFails(t *testing.T) {
	_, a, _ := newExchange(t)
	if a.SendIPv4(1, iputil.MustParseAddr("99.0.0.1"), 1, 80, nil) {
		t.Fatal("send without a route must fail")
	}
}

func TestOnDeliverCallback(t *testing.T) {
	_, a, b := newExchange(t)
	b.Announce(iputil.MustParsePrefix("20.0.0.0/8"))
	var seen []pkt.Packet
	b.OnDeliver = func(p pkt.Packet) { seen = append(seen, p) }
	a.SendIPv4(1, iputil.MustParseAddr("20.0.0.1"), 1, 443, nil)
	if len(seen) != 1 || seen[0].DstPort != 443 {
		t.Fatalf("OnDeliver saw %v", seen)
	}
}

func TestAnnounceCustomPath(t *testing.T) {
	ctrl, a, b := newExchange(t)
	b.Announce(iputil.MustParsePrefix("20.0.0.0/8"), 200, 701, 16509)
	best, ok := ctrl.RouteServer().BestRoute(100, iputil.MustParsePrefix("20.0.0.0/8"))
	if !ok || best.Attrs.PathLen() != 3 || best.Attrs.OriginAS() != 16509 {
		t.Fatalf("best = %v", best)
	}
	_ = a
}
