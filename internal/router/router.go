// Package router simulates a participant's BGP border router attached to
// the SDX fabric (§4.2's multi-stage FIB, stage one): it learns routes
// from the SDX route server, maintains a forwarding table keyed by
// destination prefix, resolves BGP next hops to MAC addresses through the
// exchange's ARP responder, and tags outgoing packets with the resolved
// destination MAC — the virtual MAC when the next hop is a virtual next
// hop, which is exactly how unmodified routers end up tagging packets
// with forwarding-equivalence-class IDs.
package router

import (
	"fmt"
	"sync"

	"sdx/internal/bgp"
	"sdx/internal/core"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
)

// BorderRouter is one simulated edge router with a single fabric port.
// Participants with several ports run one BorderRouter per port.
type BorderRouter struct {
	ctrl *core.Controller
	as   uint32
	port core.PhysicalPort

	mu       sync.Mutex
	fib      iputil.Trie // prefix -> next-hop IP (iputil.Addr)
	received []pkt.Packet

	// OnDeliver, when non-nil, observes every packet the fabric delivers
	// to this router (called synchronously from the injecting goroutine).
	OnDeliver func(pkt.Packet)
}

// Attach creates a border router for participant as on one of its fabric
// ports and wires it to the controller: it receives the SDX's route
// advertisements and the fabric's packet deliveries.
func Attach(ctrl *core.Controller, as uint32, port core.PhysicalPort) (*BorderRouter, error) {
	p, ok := ctrl.Participant(as)
	if !ok {
		return nil, fmt.Errorf("router: unknown participant AS%d", as)
	}
	if !p.HasPort(port.ID) {
		return nil, fmt.Errorf("router: port %d does not belong to AS%d", port.ID, as)
	}
	r := &BorderRouter{ctrl: ctrl, as: as, port: port}
	if _, err := ctrl.OnRoute(as, r.handleAd); err != nil {
		return nil, err
	}
	// Initial table transfer: a router attaching to a running exchange
	// learns the current (VNH-rewritten) routes immediately, like a BGP
	// session coming up.
	for _, ad := range ctrl.RoutesFor(as) {
		r.handleAd(ad)
	}
	if err := ctrl.Switch().SetDeliver(port.ID, r.deliver); err != nil {
		return nil, err
	}
	return r, nil
}

// AS returns the router's AS number.
func (r *BorderRouter) AS() uint32 { return r.as }

// Port returns the router's fabric port.
func (r *BorderRouter) Port() core.PhysicalPort { return r.port }

// handleAd applies one SDX route advertisement to the FIB.
func (r *BorderRouter) handleAd(ad core.RouteAd) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ad.Withdraw {
		r.fib.Delete(ad.Prefix)
		return
	}
	r.fib.Insert(ad.Prefix, ad.NextHop)
}

func (r *BorderRouter) deliver(p pkt.Packet) {
	r.mu.Lock()
	r.received = append(r.received, p)
	cb := r.OnDeliver
	r.mu.Unlock()
	if cb != nil {
		cb(p)
	}
}

// Received returns (a copy of) every packet delivered to this router.
func (r *BorderRouter) Received() []pkt.Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]pkt.Packet(nil), r.received...)
}

// ClearReceived discards the receive log.
func (r *BorderRouter) ClearReceived() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.received = nil
}

// FIBLen returns the number of FIB entries.
func (r *BorderRouter) FIBLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fib.Len()
}

// Lookup returns the FIB next hop for a destination address.
func (r *BorderRouter) Lookup(dst iputil.Addr) (iputil.Addr, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.fib.Lookup(dst)
	if !ok {
		return 0, false
	}
	return v.(iputil.Addr), true
}

// Announce originates a BGP route through the SDX route server. The AS
// path defaults to just the router's own AS; pass the full path (nearest
// first, starting with this AS) to simulate transit routes.
func (r *BorderRouter) Announce(prefix iputil.Prefix, asPath ...uint32) core.UpdateResult {
	if len(asPath) == 0 {
		asPath = []uint32{r.as}
	}
	u := &bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: asPath, NextHop: r.port.IP()},
		NLRI:  []iputil.Prefix{prefix},
	}
	return r.ctrl.ApplyUpdates(r.as, u)
}

// Withdraw retracts a previously announced prefix.
func (r *BorderRouter) Withdraw(prefix iputil.Prefix) core.UpdateResult {
	return r.ctrl.ApplyUpdates(r.as, &bgp.Update{Withdrawn: []iputil.Prefix{prefix}})
}

// Send pushes one packet through the router into the fabric: the FIB maps
// the destination to a next hop, ARP resolves the next hop to a MAC
// (virtual or real), and the packet enters the fabric on the router's
// port with the resolved destination MAC. It returns false when the
// destination has no route or the next hop does not resolve.
func (r *BorderRouter) Send(p pkt.Packet) bool {
	nh, ok := r.Lookup(p.DstIP)
	if !ok {
		return false
	}
	mac, ok := r.ctrl.ARP().Resolve(nh)
	if !ok {
		return false
	}
	p.SrcMAC = r.port.MAC()
	p.DstMAC = mac
	if p.EthType == 0 {
		p.EthType = pkt.EthTypeIPv4
	}
	r.ctrl.InjectFromPort(r.port.ID, p)
	return true
}

// SendIPv4 is a convenience wrapper building a TCP/IPv4 packet.
func (r *BorderRouter) SendIPv4(src, dst iputil.Addr, srcPort, dstPort uint16, payload []byte) bool {
	return r.Send(pkt.Packet{
		EthType: pkt.EthTypeIPv4,
		SrcIP:   src,
		DstIP:   dst,
		Proto:   pkt.ProtoTCP,
		SrcPort: srcPort,
		DstPort: dstPort,
		Payload: payload,
	})
}
