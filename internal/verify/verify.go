// Package verify implements a semantic checker over compiled SDX
// classifiers and installed flow tables. It detects three defect classes:
//
//   - conflict: two rules at the same priority whose matches overlap but
//     whose action sets differ. On hardware that does not define a
//     tie-break, such a pair makes forwarding nondeterministic; even with
//     this repo's deterministic cookie/insertion tie-break it means two
//     bands disagree about the same traffic.
//   - shadow: a rule fully covered by a single higher-precedence rule of
//     the same band (cookie), and therefore unreachable. Cross-band
//     coverage is deliberately exempt — the fast band overlays stale
//     band-1/band-2 rules by design (§ "fast path" in DESIGN.md), so only
//     intra-band dead rules are compiler defects.
//   - trunk-gap: a member switch of a fabric.Topology missing the static
//     L2 trunk rule for some participant port, which would strand
//     in-transit traffic for that port on the switch.
//
// The checks are exact: overlap and coverage are decided by pkt.Match
// intersection (Match.Overlaps / Match.Covers), not sampling.
package verify

import (
	"fmt"
	"strings"

	"sdx/internal/core"
	"sdx/internal/dataplane"
	"sdx/internal/fabric"
	"sdx/internal/pkt"
)

// Kind classifies a verifier finding.
type Kind string

const (
	// KindConflict marks equal-priority overlapping rules with divergent
	// actions (nondeterministic forwarding).
	KindConflict Kind = "conflict"
	// KindShadow marks a rule fully covered by a single higher-precedence
	// rule of the same cookie (unreachable rule).
	KindShadow Kind = "shadow"
	// KindTrunkGap marks a switch missing the trunk-band rule for a
	// participant port.
	KindTrunkGap Kind = "trunk-gap"
)

// Finding is one defect located by the verifier.
type Finding struct {
	Kind   Kind   `json:"kind"`
	Switch string `json:"switch,omitempty"` // fabric member, when applicable
	Rule   string `json:"rule"`             // the offending rule
	Other  string `json:"other,omitempty"`  // its counterpart (overlapping / covering rule)
	Detail string `json:"detail"`
}

// String renders "kind: detail: rule [vs other]".
func (f Finding) String() string {
	var b strings.Builder
	b.WriteString(string(f.Kind))
	if f.Switch != "" {
		fmt.Fprintf(&b, " [switch %s]", f.Switch)
	}
	b.WriteString(": ")
	b.WriteString(f.Detail)
	if f.Rule != "" {
		b.WriteString(": ")
		b.WriteString(f.Rule)
	}
	if f.Other != "" {
		b.WriteString(" vs ")
		b.WriteString(f.Other)
	}
	return b.String()
}

// Report aggregates the findings of one verification pass.
type Report struct {
	Rules    int       `json:"rules"` // entries examined
	Findings []Finding `json:"findings,omitempty"`
}

// OK reports whether the pass found no defects.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Err returns nil for a clean report, or an error summarizing the
// findings (all of them, newline-separated) otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	lines := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		lines[i] = f.String()
	}
	return fmt.Errorf("verify: %d finding(s) in %d rules:\n%s",
		len(r.Findings), r.Rules, strings.Join(lines, "\n"))
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

func (r *Report) merge(o *Report) {
	r.Rules += o.Rules
	r.Findings = append(r.Findings, o.Findings...)
}

// Entries checks a rule set for conflicts and shadowing. The slice is
// not modified; precedence is computed with dataplane.OrderEntries
// semantics (priority descending, cookie ascending, given order last).
func Entries(es []*dataplane.FlowEntry) *Report {
	ordered := append([]*dataplane.FlowEntry(nil), es...)
	dataplane.OrderEntries(ordered)
	rep := &Report{Rules: len(ordered)}
	findConflicts(ordered, rep)
	findShadows(ordered, rep)
	return rep
}

// Table checks a live flow table's current contents.
func Table(t *dataplane.FlowTable) *Report { return Entries(t.Entries()) }

// Compiled checks one full compilation result, rendered as flow entries
// exactly as the controller would install them.
func Compiled(c *core.Compiled) *Report { return Entries(c.BandEntries()) }

// Fabric checks every member switch of a fabric: each table for conflicts
// and shadowing, and each for trunk-band coverage of every participant
// port in the topology.
func Fabric(f *fabric.Fabric, topo fabric.Topology) *Report {
	rep := &Report{}
	for _, name := range topo.Switches {
		sw := f.Switch(name)
		if sw == nil {
			rep.add(Finding{Kind: KindTrunkGap, Switch: name, Detail: "switch missing from fabric"})
			continue
		}
		es := sw.Table().Entries()
		r := Entries(es)
		for i := range r.Findings {
			r.Findings[i].Switch = name
		}
		rep.merge(r)
		for _, f := range TrunkCoverage(topo, name, es) {
			rep.add(f)
		}
	}
	return rep
}

// TrunkCoverage checks the static L2 trunk band of one member switch: for
// every participant port in the topology there must be a TrunkCookie rule
// matching the port's real MAC, with at least one action. A gap strands
// in-transit traffic toward that port on this switch.
func TrunkCoverage(topo fabric.Topology, name string, es []*dataplane.FlowEntry) []Finding {
	covered := make(map[pkt.MAC]bool)
	for _, e := range es {
		if e.Cookie != fabric.TrunkCookie || len(e.Actions) == 0 {
			continue
		}
		if mac, ok := e.Match.GetDstMAC(); ok {
			covered[mac] = true
		}
	}
	var out []Finding
	for port := range topo.Ports {
		if !covered[core.PortMAC(port)] {
			out = append(out, Finding{
				Kind:   KindTrunkGap,
				Switch: name,
				Detail: fmt.Sprintf("no trunk rule for participant port %d (dstMAC %s)", port, core.PortMAC(port)),
			})
		}
	}
	// Map iteration order is random; keep reports stable.
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Detail < fs[j-1].Detail; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// findConflicts walks each equal-priority run of the ordered entries and
// flags overlapping pairs whose action sets differ.
func findConflicts(ordered []*dataplane.FlowEntry, rep *Report) {
	for lo := 0; lo < len(ordered); {
		hi := lo + 1
		for hi < len(ordered) && ordered[hi].Priority == ordered[lo].Priority {
			hi++
		}
		group := ordered[lo:hi]
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if !group[i].Match.Overlaps(group[j].Match) {
					continue
				}
				if sameActions(group[i].Actions, group[j].Actions) {
					continue
				}
				rep.add(Finding{
					Kind:   KindConflict,
					Rule:   describe(group[i]),
					Other:  describe(group[j]),
					Detail: fmt.Sprintf("equal-priority overlap with divergent actions at priority %d", group[i].Priority),
				})
			}
		}
		lo = hi
	}
}

// findShadows flags entries fully covered by a single higher-precedence
// entry of the same cookie. Pairs at equal priority with divergent
// actions are already conflicts and are not double-reported.
func findShadows(ordered []*dataplane.FlowEntry, rep *Report) {
	// Candidate index: a rule covering r must constrain in-port and
	// dst-MAC either not at all or to r's exact values, so bucketing prior
	// rules by those two fields prunes the quadratic scan to the four
	// buckets a rule can possibly be covered from.
	type bucketKey struct {
		hasPort bool
		port    pkt.PortID
		hasMAC  bool
		mac     pkt.MAC
	}
	buckets := make(map[uint64]map[bucketKey][]*dataplane.FlowEntry)
	keyFor := func(m pkt.Match, usePort, useMAC bool) bucketKey {
		var k bucketKey
		if usePort {
			k.port, k.hasPort = m.GetInPort()
		}
		if useMAC {
			k.mac, k.hasMAC = m.GetDstMAC()
		}
		return k
	}
	for _, e := range ordered {
		byKey := buckets[e.Cookie]
		if byKey == nil {
			byKey = make(map[bucketKey][]*dataplane.FlowEntry)
			buckets[e.Cookie] = byKey
		}
		// Check the four buckets that can hold a covering rule: each
		// combination of "constrains the field to my value" / "leaves the
		// field wild".
		_, hasPort := e.Match.GetInPort()
		_, hasMAC := e.Match.GetDstMAC()
		for _, usePort := range boolsFor(hasPort) {
			for _, useMAC := range boolsFor(hasMAC) {
				for _, prev := range byKey[keyFor(e.Match, usePort, useMAC)] {
					if !prev.Match.Covers(e.Match) {
						continue
					}
					if prev.Priority == e.Priority && !sameActions(prev.Actions, e.Actions) {
						continue // reported as a conflict
					}
					rep.add(Finding{
						Kind:   KindShadow,
						Rule:   describe(e),
						Other:  describe(prev),
						Detail: "rule is unreachable: fully covered by a higher-precedence rule of the same band",
					})
					goto next
				}
			}
		}
	next:
		byKey[keyFor(e.Match, true, true)] = append(byKey[keyFor(e.Match, true, true)], e)
	}
}

// boolsFor returns the candidate "does the covering rule constrain this
// field" values: a wild field on the covered rule can only be covered by
// a wild field.
func boolsFor(has bool) []bool {
	if has {
		return []bool{true, false}
	}
	return []bool{false}
}

// sameActions compares action sets as unordered multisets: the dataplane
// applies every action of the winning entry, so ordering differences do
// not change forwarding behaviour.
func sameActions(a, b []pkt.Action) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	counts := make(map[pkt.Action]int, len(a))
	for _, x := range a {
		counts[x]++
	}
	for _, y := range b {
		counts[y]--
		if counts[y] < 0 {
			return false
		}
	}
	return true
}

func describe(e *dataplane.FlowEntry) string {
	return fmt.Sprintf("[cookie %d] %s", e.Cookie, e)
}
