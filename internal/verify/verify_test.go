package verify

import (
	"strings"
	"testing"

	"sdx/internal/dataplane"
	"sdx/internal/fabric"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
)

func pfx(s string) iputil.Prefix { return iputil.MustParsePrefix(s) }

func out(p pkt.PortID) []pkt.Action { return []pkt.Action{pkt.Output(p)} }

func kinds(r *Report) []Kind {
	ks := make([]Kind, len(r.Findings))
	for i, f := range r.Findings {
		ks[i] = f.Kind
	}
	return ks
}

func TestDetectsEqualPriorityConflict(t *testing.T) {
	// Overlapping dst prefixes at the same priority, different outputs:
	// nondeterministic forwarding on hardware without a tie-break.
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1), Cookie: 3},
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.1.0.0/16")), Actions: out(2), Cookie: 3},
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindConflict {
		t.Fatalf("findings = %v, want one conflict", rep.Findings)
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "divergent actions") {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

func TestEqualPriorityOverlapSameActionsIsClean(t *testing.T) {
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1)},
		{Priority: 5, Match: pkt.MatchAll.SrcPort(80), Actions: out(1)},
	})
	if !rep.OK() {
		t.Fatalf("identical actions must not conflict: %v", rep.Findings)
	}
}

func TestActionOrderDoesNotConflict(t *testing.T) {
	// Multicast action sets are unordered: every action of the winning
	// entry applies, so permuted sets are the same behaviour.
	a := []pkt.Action{pkt.Output(1), pkt.Output(2)}
	b := []pkt.Action{pkt.Output(2), pkt.Output(1)}
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: pkt.MatchAll.DstPort(80), Actions: a},
		{Priority: 5, Match: pkt.MatchAll, Actions: b},
	})
	if !rep.OK() {
		t.Fatalf("permuted action sets must not conflict: %v", rep.Findings)
	}
}

func TestDropVersusForwardConflicts(t *testing.T) {
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: pkt.MatchAll.DstPort(80), Actions: out(1)},
		{Priority: 5, Match: pkt.MatchAll.SrcIP(pfx("10.0.0.0/8")), Actions: nil}, // drop
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindConflict {
		t.Fatalf("drop vs forward at equal priority must conflict: %v", rep.Findings)
	}
}

func TestDetectsShadowedRule(t *testing.T) {
	// The /16 rule is fully inside the higher-priority /8 rule of the
	// same band: unreachable.
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 10, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1), Cookie: 1},
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.1.0.0/16")), Actions: out(2), Cookie: 1},
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindShadow {
		t.Fatalf("findings = %v, want one shadow", rep.Findings)
	}
}

func TestCrossBandShadowIsExempt(t *testing.T) {
	// Same geometry as TestDetectsShadowedRule but across cookies: the
	// fast band overlays stale band rules by design, so no finding.
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 10, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1), Cookie: 3},
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.1.0.0/16")), Actions: out(2), Cookie: 2},
	})
	if !rep.OK() {
		t.Fatalf("cross-cookie coverage must be exempt: %v", rep.Findings)
	}
}

func TestEqualPriorityDuplicateIsShadowNotConflict(t *testing.T) {
	// Identical match and actions at equal priority: redundant rule. The
	// tie-break makes the second unreachable; actions agree, so it is a
	// shadow, not a conflict.
	m := pkt.MatchAll.DstIP(pfx("10.0.0.0/8"))
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: m, Actions: out(1), Cookie: 3},
		{Priority: 5, Match: m, Actions: out(1), Cookie: 3},
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindShadow {
		t.Fatalf("findings = %v, want one shadow", rep.Findings)
	}
}

func TestEqualPriorityCoveredDivergentIsConflictOnly(t *testing.T) {
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1), Cookie: 3},
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.1.0.0/16")), Actions: out(2), Cookie: 3},
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindConflict {
		t.Fatalf("covered + divergent at equal priority must report conflict only: %v", rep.Findings)
	}
}

func TestShadowNeedsEveryFieldCovered(t *testing.T) {
	// The higher rule constrains dst port; the lower one does not, so
	// some packets reach it: not shadowed.
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 10, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")).DstPort(80), Actions: out(1)},
		{Priority: 5, Match: pkt.MatchAll.DstIP(pfx("10.1.0.0/16")), Actions: out(2)},
	})
	if !rep.OK() {
		t.Fatalf("partial coverage must not shadow: %v", rep.Findings)
	}
}

func TestTableChecksLiveContents(t *testing.T) {
	tbl := dataplane.NewFlowTable()
	tbl.Add(&dataplane.FlowEntry{Priority: 5, Match: pkt.MatchAll.DstPort(80), Actions: out(1)})
	tbl.Add(&dataplane.FlowEntry{Priority: 5, Match: pkt.MatchAll, Actions: out(2)})
	rep := Table(tbl)
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindConflict {
		t.Fatalf("findings = %v, want one conflict", rep.Findings)
	}
	if rep.Rules != 2 {
		t.Fatalf("Rules = %d, want 2", rep.Rules)
	}
}

func twoSwitchTopo() fabric.Topology {
	return fabric.Topology{
		Switches: []string{"s1", "s2"},
		Ports:    map[pkt.PortID]string{1: "s1", 2: "s2"},
		Links:    []fabric.Link{{A: "s1", B: "s2", PortA: 100, PortB: 101}},
	}
}

func TestFabricCleanAfterNew(t *testing.T) {
	topo := twoSwitchTopo()
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	rep := Fabric(f, topo)
	if !rep.OK() {
		t.Fatalf("fresh fabric must verify clean: %v", rep.Findings)
	}
	if rep.Rules == 0 {
		t.Fatal("expected trunk rules to be examined")
	}
}

func TestDetectsTrunkGap(t *testing.T) {
	topo := twoSwitchTopo()
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Wipe s1's trunk band: both participant ports lose coverage there.
	f.Switch("s1").Table().DeleteCookie(fabric.TrunkCookie)
	rep := Fabric(f, topo)
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %v, want two trunk gaps", rep.Findings)
	}
	for _, fd := range rep.Findings {
		if fd.Kind != KindTrunkGap || fd.Switch != "s1" {
			t.Fatalf("finding = %+v, want trunk-gap on s1", fd)
		}
	}
}

func TestFabricReportsMemberTableConflicts(t *testing.T) {
	topo := twoSwitchTopo()
	f, err := fabric.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	f.Switch("s2").Table().AddBatch([]*dataplane.FlowEntry{
		{Priority: 7, Match: pkt.MatchAll.DstPort(80), Actions: out(1), Cookie: 1},
		{Priority: 7, Match: pkt.MatchAll, Actions: nil, Cookie: 1},
	})
	rep := Fabric(f, topo)
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindConflict || rep.Findings[0].Switch != "s2" {
		t.Fatalf("findings = %v, want one conflict on s2", rep.Findings)
	}
}

func TestShadowPruningStillExactAcrossFieldShapes(t *testing.T) {
	// The bucket pruning must not miss coverage when the covering rule
	// leaves in-port and dst-MAC wild while the covered rule pins both.
	mac := pkt.MAC(0x0200_0000_0001)
	rep := Entries([]*dataplane.FlowEntry{
		{Priority: 10, Match: pkt.MatchAll.DstIP(pfx("10.0.0.0/8")), Actions: out(1)},
		{Priority: 5, Match: pkt.MatchAll.InPort(3).DstMAC(mac).DstIP(pfx("10.2.0.0/16")), Actions: out(2)},
	})
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindShadow {
		t.Fatalf("findings = %v, want one shadow", rep.Findings)
	}
}
