package sdx

import (
	"sync"
	"testing"
	"time"

	"sdx/internal/bgp"
	"sdx/internal/iputil"
)

func listenForTest(t *testing.T, ctrl *Controller) *BGPServer {
	t.Helper()
	srv, err := ListenBGP(ctrl, "127.0.0.1:0", 64512)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func newTwoPartyExchange(t *testing.T) *Controller {
	t.Helper()
	ctrl := New()
	for _, cfg := range []ParticipantConfig{
		{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return ctrl
}

func TestBGPServerSessionFlow(t *testing.T) {
	ctrl := newTwoPartyExchange(t)
	srv := listenForTest(t, ctrl)

	type recv struct {
		mu   sync.Mutex
		upds []*bgp.Update
	}
	var ra recv
	sessA, err := DialBGP(srv.Addr(), bgp.SessionConfig{
		LocalAS: 100, RouterID: 1,
		OnUpdate: func(_ *bgp.Session, u *bgp.Update) {
			ra.mu.Lock()
			ra.upds = append(ra.upds, u)
			ra.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sessA.Close()
	if sessA.PeerAS() != 64512 {
		t.Fatalf("route server AS = %d", sessA.PeerAS())
	}

	sessB, err := DialBGP(srv.Addr(), bgp.SessionConfig{LocalAS: 200, RouterID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sessB.Close()

	// B announces a prefix over real BGP; A must learn it through the
	// route server with B's port IP as next hop (no policies yet).
	prefix := MustParsePrefix("20.0.0.0/8")
	err = sessB.SendUpdate(&bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: PortIP(2)},
		NLRI:  []iputil.Prefix{prefix},
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		ra.mu.Lock()
		n := len(ra.upds)
		ra.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for advertisement at A")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ra.mu.Lock()
	got := ra.upds[0]
	ra.mu.Unlock()
	if len(got.NLRI) != 1 || got.NLRI[0] != prefix {
		t.Fatalf("A received %v", got)
	}
	if got.Attrs.NextHop != PortIP(2) {
		t.Fatalf("next hop %v, want B's port IP (ungrouped prefix)", got.Attrs.NextHop)
	}

	// With a policy covering the prefix, the re-advertised next hop moves
	// into the VNH subnet.
	if rep := ctrl.Recompile(CompilePolicy(100, nil, []Term{
		Fwd(MatchAll.DstPort(80), 200),
	})); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		ra.mu.Lock()
		var vnhSeen bool
		for _, u := range ra.upds {
			if len(u.NLRI) == 1 && u.NLRI[0] == prefix && VNHSubnet.Contains(u.Attrs.NextHop) {
				vnhSeen = true
			}
		}
		ra.mu.Unlock()
		if vnhSeen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for VNH re-advertisement")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBGPServerRejectsUnknownParticipant(t *testing.T) {
	ctrl := newTwoPartyExchange(t)
	srv := listenForTest(t, ctrl)
	sess, err := DialBGP(srv.Addr(), bgp.SessionConfig{LocalAS: 999, RouterID: 9})
	if err != nil {
		return // rejected during handshake: also acceptable
	}
	select {
	case <-sess.Done():
		// The server closed the unknown participant's session.
	case <-time.After(3 * time.Second):
		t.Fatal("unknown participant session should be closed")
	}
}

func TestBGPServerInitialTableTransfer(t *testing.T) {
	ctrl := newTwoPartyExchange(t)
	// Seed a route before anyone connects.
	prefix := MustParsePrefix("20.0.0.0/8")
	ctrl.ProcessUpdate(200, &bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: PortIP(2)},
		NLRI:  []iputil.Prefix{prefix},
	})
	srv := listenForTest(t, ctrl)

	got := make(chan *bgp.Update, 4)
	sess, err := DialBGP(srv.Addr(), bgp.SessionConfig{
		LocalAS: 100, RouterID: 1,
		OnUpdate: func(_ *bgp.Session, u *bgp.Update) { got <- u },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	select {
	case u := <-got:
		if len(u.NLRI) != 1 || u.NLRI[0] != prefix {
			t.Fatalf("initial transfer: %v", u)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout waiting for initial table transfer")
	}
}
