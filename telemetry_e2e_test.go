package sdx

// End-to-end telemetry invariants: drive the controller over real BGP
// sessions on loopback TCP and check that the counters, histograms and
// trace agree with each other — every update counted is timed and traced,
// and every full compilation lands exactly one compile-latency sample.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"sdx/internal/bgp"
	"sdx/internal/iputil"
)

func TestTelemetryEndToEnd(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(8192)
	ctrl := New(WithTelemetry(reg), WithTracer(tracer))
	if ctrl.Metrics() != reg || ctrl.Tracer() != tracer {
		t.Fatal("injected registry/tracer not adopted")
	}
	for _, cfg := range []ParticipantConfig{
		{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if rep := ctrl.Recompile(CompilePolicy(100, nil, []Term{
		Fwd(MatchAll.DstPort(80), 200),
	})); rep.Err != nil {
		t.Fatal(rep.Err)
	}

	srv, err := ListenBGP(ctrl, "127.0.0.1:0", 64512)
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer srv.Close()

	sess, err := DialBGP(srv.Addr(), bgp.SessionConfig{LocalAS: 200, RouterID: PortIP(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const burst = 50
	for i := 0; i < burst; i++ {
		u := &bgp.Update{
			Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: PortIP(2)},
			NLRI:  []iputil.Prefix{MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))},
		}
		if err := sess.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}

	updatesIn := reg.Counter("controller.updates_in")
	deadline := time.Now().Add(5 * time.Second)
	for updatesIn.Value() < burst {
		if time.Now().After(deadline) {
			t.Fatalf("controller saw %d/%d updates", updatesIn.Value(), burst)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctrl.Recompile()

	// Every counted update was traced and timed.
	n := updatesIn.Value()
	if traced := tracer.CountByType(EventBGPUpdateReceived); traced != uint64(n) {
		t.Fatalf("updates_in %d but %d BGPUpdateReceived events traced", n, traced)
	}
	if timed := reg.Histogram("controller.update_ns").Count(); timed != n {
		t.Fatalf("updates_in %d but update_ns has %d samples", n, timed)
	}

	// Every full compilation landed one compile-latency sample and one
	// CompileDone trace event.
	compiles := reg.Counter("controller.full_compiles").Value()
	if compiles < 2 { // policy install + explicit Recompile
		t.Fatalf("expected at least 2 full compiles, got %d", compiles)
	}
	ch := reg.Histogram("controller.compile_ns")
	if ch.Count() != compiles {
		t.Fatalf("%d full compiles but compile_ns has %d samples", compiles, ch.Count())
	}
	if ch.Sum() == 0 || ch.Quantile(0.5) == 0 {
		t.Fatal("compile-latency histogram is empty")
	}
	if done := tracer.CountByType(EventCompileDone); done != uint64(compiles) {
		t.Fatalf("%d full compiles but %d CompileDone events", compiles, done)
	}

	// The BGP session layer saw the burst too.
	if v := reg.Counter("bgp.updates_in").Value(); v < burst {
		t.Fatalf("bgp.updates_in = %d, want >= %d", v, burst)
	}
	if v := reg.Counter("bgp.sessions_established").Value(); v < 1 {
		t.Fatal("no established session counted")
	}
	if tracer.CountByType(EventSessionStateChange) == 0 {
		t.Fatal("no session state change traced")
	}

	// The RIB gauges and snapshot plumbing agree with the burst.
	snap := reg.Snapshot()
	if snap.Gauges["rs.adj_rib_routes"] < burst {
		t.Fatalf("rs.adj_rib_routes = %d, want >= %d", snap.Gauges["rs.adj_rib_routes"], burst)
	}
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["controller.updates_in"] != n {
		t.Fatalf("JSON snapshot lost updates_in: %d != %d", decoded.Counters["controller.updates_in"], n)
	}
}
