package sdx

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the hot paths. The custom metrics reported via
// b.ReportMetric are the paper's y-axes:
//
//	BenchmarkTable1TraceSynthesis    updates/s of trace generation
//	BenchmarkFig5a / Fig5b           end-to-end deployment replays
//	BenchmarkFig6PrefixGroups        groups (sub-linear in prefixes)
//	BenchmarkFig7FlowRules           rules (linear in groups)
//	BenchmarkFig8InitialCompilation  compile ns (superlinear in groups)
//	BenchmarkFig9BurstRules          additional rules per 100-update burst
//	BenchmarkFig10UpdateTime         fast-path ns per BGP update
//
// Run them all with:  go test -bench=. -benchmem
// cmd/sdx-bench prints the same data as full tables/series.

import (
	"fmt"
	"testing"

	"sdx/internal/bgp"
	"sdx/internal/experiments"
	"sdx/internal/iputil"
	"sdx/internal/workload"
)

func BenchmarkTable1TraceSynthesis(b *testing.B) {
	x := workload.NewIXP(workload.DefaultTopology(100, 5000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := workload.GenerateTrace(x, workload.DefaultTrace(5000, int64(i)))
		if len(tr.Events) != 5000 {
			b.Fatal("bad trace")
		}
	}
	b.ReportMetric(5000, "updates/op")
}

func BenchmarkFig5aAppSpecificPeering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig5a(120, 40, 80)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.CheckFig5a(40, 80); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bLoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig5b(80, 30)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.CheckFig5b(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6PrefixGroups(b *testing.B) {
	for _, n := range []int{100, 200, 300} {
		for _, prefixes := range []int{5000, 10000} {
			b.Run(fmt.Sprintf("participants=%d/prefixes=%d", n, prefixes), func(b *testing.B) {
				var groups int
				for i := 0; i < b.N; i++ {
					pts := experiments.Fig6([]int{n}, []int{prefixes}, prefixes, 1)
					groups = pts[0].Groups
				}
				b.ReportMetric(float64(groups), "groups")
			})
		}
	}
}

func BenchmarkFig7FlowRules(b *testing.B) {
	for _, n := range []int{100, 200, 300} {
		for _, groups := range []int{200, 400} {
			b.Run(fmt.Sprintf("participants=%d/groups=%d", n, groups), func(b *testing.B) {
				var rules int
				for i := 0; i < b.N; i++ {
					pts, err := experiments.Fig78([]int{n}, []int{groups}, 1)
					if err != nil {
						b.Fatal(err)
					}
					rules = pts[0].Rules
				}
				b.ReportMetric(float64(rules), "rules")
			})
		}
	}
}

func BenchmarkFig8InitialCompilation(b *testing.B) {
	for _, n := range []int{100, 300} {
		for _, groups := range []int{200, 400} {
			b.Run(fmt.Sprintf("participants=%d/groups=%d", n, groups), func(b *testing.B) {
				pts, err := experiments.Fig78([]int{n}, []int{groups}, 1)
				if err != nil {
					b.Fatal(err)
				}
				// Report the measured compile time as the benchmark's
				// own metric; the loop recompiles for timing stability.
				b.ReportMetric(float64(pts[0].CompileTime.Nanoseconds()), "compile-ns")
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Fig78([]int{n}, []int{groups}, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig9BurstRules(b *testing.B) {
	for _, n := range []int{100, 300} {
		b.Run(fmt.Sprintf("participants=%d/burst=100", n), func(b *testing.B) {
			var additional int
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig9([]int{n}, []int{100}, 200, 1)
				if err != nil {
					b.Fatal(err)
				}
				additional = pts[0].AdditionalRules
			}
			b.ReportMetric(float64(additional), "rules/burst")
		})
	}
}

func BenchmarkFig10UpdateTime(b *testing.B) {
	for _, n := range []int{100, 300} {
		b.Run(fmt.Sprintf("participants=%d", n), func(b *testing.B) {
			res, err := experiments.Fig10([]int{n}, 100, 200, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res[0].Percentile(0.5).Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(res[0].Percentile(0.99).Nanoseconds()), "p99-ns")
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig10([]int{n}, 10, 200, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation runs the design-choice ablations (DESIGN.md §3): the
// reported metrics compare the full pipeline against variants with VNH
// grouping, memoization, or disjoint concatenation disabled.
func BenchmarkAblation(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Ablation(40, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Rules), r.Mode+"-rules")
	}
}

// BenchmarkCompileSerialVsParallel measures the tentpole speedup: one
// exchange compiled by the serial reference compiler and by the parallel
// pipeline. On a multi-core machine the parallel/ sub-benchmarks should
// run well under the serial/ ones (≥2x at 300 participants on 4+ cores);
// on a single core they track each other. `sdx-bench -json` records the
// same comparison in BENCH_compile.json.
func BenchmarkCompileSerialVsParallel(b *testing.B) {
	for _, n := range []int{100, 300} {
		ctrl, _, err := experiments.NewGroupedExchange(n, 2*n, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name   string
			serial bool
		}{
			{"serial", true},
			{"parallel", false},
		} {
			b.Run(fmt.Sprintf("participants=%d/%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep := ctrl.Recompile(WithCompileOptions(CompileOptions{Serial: mode.serial}))
					if rep.Rules == 0 {
						b.Fatal("no rules")
					}
				}
			})
		}
	}
}

// --- Hot-path micro-benchmarks ----------------------------------------------

// BenchmarkProcessUpdate measures the controller's full fast path for a
// single-prefix announcement against a loaded exchange.
func BenchmarkProcessUpdate(b *testing.B) {
	x := workload.NewIXP(workload.DefaultTopology(100, 2000, 1))
	ctrl, err := workload.Load(x)
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.InstallPolicies(ctrl, workload.AssignPolicies(x, workload.DefaultPolicyMix(1))); err != nil {
		b.Fatal(err)
	}
	ctrl.Recompile()
	peer := x.Participants[0].AS
	prefix := x.Participants[0].Prefixes[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.ProcessUpdate(peer, &bgp.Update{
			Attrs: &bgp.PathAttrs{ASPath: []uint32{peer, uint32(900 + i%50)}, NextHop: iputil.Addr(peer)},
			NLRI:  []iputil.Prefix{prefix},
		})
		if i%200 == 199 {
			b.StopTimer()
			ctrl.Recompile()
			b.StartTimer()
		}
	}
}

// BenchmarkRecompile measures the full optimization pass on a mid-size
// exchange.
func BenchmarkRecompile(b *testing.B) {
	x := workload.NewIXP(workload.DefaultTopology(100, 2000, 1))
	ctrl, err := workload.Load(x)
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.InstallPolicies(ctrl, workload.AssignPolicies(x, workload.DefaultPolicyMix(1))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ctrl.Recompile()
		if rep.Rules == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkFabricForwarding measures a single packet through the compiled
// fabric (switch lookup + action application).
func BenchmarkFabricForwarding(b *testing.B) {
	s, err := experiments.Fig5a(2, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	_ = s
	// Reuse the e2e Figure 1 fixture shape through the public API.
	ctrl := New()
	ctrl.AddParticipant(ParticipantConfig{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}})
	ctrl.AddParticipant(ParticipantConfig{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}}})
	ctrl.ProcessUpdate(200, &bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: iputil.Addr(PortIP(2))},
		NLRI:  []iputil.Prefix{MustParsePrefix("20.0.0.0/8")},
	})
	ctrl.Recompile(CompilePolicy(100, nil, []Term{Fwd(MatchAll.DstPort(80), 200)}))
	comp := ctrl.Compiled()
	if len(comp.VMACs) == 0 {
		b.Fatal("no groups")
	}
	p := Packet{
		EthType: 0x0800, DstMAC: comp.VMACs[0],
		SrcIP: MustParseAddr("10.0.0.1"), DstIP: MustParseAddr("20.0.0.1"),
		Proto: 6, DstPort: 80,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.InjectFromPort(1, p)
	}
}
