package sdx

// End-to-end test of the flow-analytics feedback loop (ISSUE 10's
// tentpole): a synthetic elephant flow through the fabric is picked up
// by the 1-in-N dataplane sampler, aggregated and joined against the
// route server's Loc-RIB, detected as a heavy hitter, and fed back into
// policy — the rebalancer demotes the overloaded port and recompiles
// the inbound-TE policy, measurably shifting forwarding to the other
// port. The analytics are driven deterministically (Drain/Tick instead
// of the wall-clock collector) so the test cannot flake on timing.

import (
	"testing"
	"time"

	"sdx/internal/core"
	"sdx/internal/flow"
	"sdx/internal/pkt"
	"sdx/internal/router"
)

func TestElephantFlowTriggersRebalance(t *testing.T) {
	x := New()
	for _, cfg := range []ParticipantConfig{
		{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}, {ID: 3}}}, // dual-homed
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	attach := func(as uint32, port PortID) *router.BorderRouter {
		r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b1, b2 := attach(100, 1), attach(200, 2), attach(200, 3)

	// B announces its prefix; the announcement arrives from the session
	// on port 2, so the Loc-RIB attributes the traffic to peer AS 200.
	eyeballs := MustParsePrefix("93.184.0.0/16")
	b1.Announce(eyeballs, 200)

	// Flow pipeline: sampler on the fabric's table, analytics joined
	// against the route server, rebalancer managing B's inbound TE.
	const sampleRate = 8
	reg := x.Metrics()
	sampler := flow.NewSampler(1<<14, reg)
	x.Switch().Table().SetSampler(sampler, sampleRate)
	resolver := flow.NewRIBResolver(x.RouteServer(), time.Hour, reg)
	ana := flow.NewAnalytics(flow.Config{
		SampleRate:     sampleRate,
		Interval:       100 * time.Millisecond,
		HeavyHitterBps: 1 << 20, // 1 MiB/s estimated
		Alpha:          1,
	}, sampler.Records(), resolver, reg)
	reb := flow.NewRebalancer(x, time.Hour, reg, t.Logf)
	reb.AddGroup(flow.BalanceGroup{
		AS:    200,
		Ports: []PortID{2, 3},
		Build: func(ranked []PortID) []Term {
			// All inbound traffic to B prefers the top-ranked port.
			return []Term{core.FwdPort(pkt.MatchAll, ranked[0])}
		},
	})

	// Phase 1: before the elephant, traffic lands on B's preferred port 2.
	send := func(n int) {
		for i := 0; i < n; i++ {
			if !a.SendIPv4(MustParseAddr("10.0.0.1"), MustParseAddr("93.184.216.34"),
				40000, 80, make([]byte, 1000)) {
				t.Fatal("send failed: no route from A")
			}
		}
	}
	send(64)
	if got := len(b1.Received()); got != 64 {
		t.Fatalf("baseline: B1 received %d/64 packets", got)
	}
	if got := len(b2.Received()); got != 0 {
		t.Fatalf("baseline: B2 received %d packets before rebalance", got)
	}
	stat2Before, _ := x.Switch().Stats(2)
	stat3Before, _ := x.Switch().Stats(3)

	// Phase 2: the elephant. 4096 × ~1054B frames in one 100ms tick is
	// ≈43 MB/s estimated — far above the 1 MiB/s threshold.
	send(4096)
	ana.Drain()
	events := ana.Tick()
	if len(events) != 1 {
		t.Fatalf("elephant raised %d heavy-hitter events, want 1", len(events))
	}
	ev := events[0]
	if ev.Stat.Egress != 2 {
		t.Fatalf("heavy hitter egress = %d, want 2", ev.Stat.Egress)
	}
	if ev.Stat.Route == nil || ev.Stat.Route.PeerAS != 200 || ev.Stat.Route.Prefix != eyeballs {
		t.Fatalf("heavy hitter not BGP-correlated: %+v", ev.Stat.Route)
	}
	if ev.Stat.Rate < 1<<20 {
		t.Fatalf("heavy hitter rate = %.0f B/s, below threshold", ev.Stat.Rate)
	}
	if !reb.HandleEvent(ev) {
		t.Fatal("rebalancer ignored the heavy-hitter event")
	}
	if got := reb.Ranking(200); len(got) != 2 || got[0] != 3 {
		t.Fatalf("ranking after rebalance = %v, want [3 2]", got)
	}

	// Phase 3: the recompiled policy shifts forwarding to port 3.
	b1.ClearReceived()
	send(256)
	if got := len(b2.Received()); got != 256 {
		t.Fatalf("post-rebalance: B2 received %d/256 packets", got)
	}
	if got := len(b1.Received()); got != 0 {
		t.Fatalf("post-rebalance: B1 still received %d packets", got)
	}
	stat2After, _ := x.Switch().Stats(2)
	stat3After, _ := x.Switch().Stats(3)
	elephantBytes := stat2After.TxBytes - stat2Before.TxBytes
	shiftedBytes := stat3After.TxBytes - stat3Before.TxBytes
	if shiftedBytes == 0 {
		t.Fatal("no bytes shifted to port 3")
	}
	if elephantBytes == 0 {
		t.Fatal("elephant bytes missing from port 2 counters")
	}
	t.Logf("forwarding shift verified: port2 +%dB (elephant), port3 +%dB (post-rebalance)",
		elephantBytes, shiftedBytes)

	// The top-k summary has the elephant on top.
	top := ana.Top()
	if len(top) == 0 || top[0].Key.DstPort != 80 {
		t.Fatalf("top-k = %+v", top)
	}
	if reg.Counter("flow.rebalances").Value() != 1 {
		t.Fatalf("flow.rebalances = %d", reg.Counter("flow.rebalances").Value())
	}
}
