package sdx_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sdx"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/simnet"
	"sdx/internal/simnet/chaostest"
	"sdx/internal/telemetry"
)

// benchConverge aggregates every chaos run's fault-heal → steady-state
// latency (virtual-clock ns) across the whole test binary; TestMain
// writes its quantiles to the path in SDX_CHAOS_BENCH as the CI
// BENCH_chaos.json artifact.
var benchConverge = &telemetry.Histogram{}

// The reconciler-only counterparts, aggregated across audit-disabled runs
// and written to SDX_RECONCILE_BENCH as the CI BENCH_reconcile.json
// artifact: fault-heal convergence driven by the reconciler alone, repair
// issue latencies, and dataplane probe RTT/loss.
var (
	benchReconcileConverge = &telemetry.Histogram{}
	benchRepairNS          = &telemetry.Histogram{}
	benchProbeRTT          = &telemetry.Histogram{}
	benchProbeSent         int64
	benchProbeLost         int64
)

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("SDX_CHAOS_BENCH"); path != "" && code == 0 {
		if err := writeChaosBench(path); err != nil {
			fmt.Fprintf(os.Stderr, "SDX_CHAOS_BENCH: %v\n", err)
			code = 1
		}
	}
	if path := os.Getenv("SDX_RECONCILE_BENCH"); path != "" && code == 0 {
		if err := writeReconcileBench(path); err != nil {
			fmt.Fprintf(os.Stderr, "SDX_RECONCILE_BENCH: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeChaosBench(path string) error {
	s := benchConverge.Snapshot()
	doc := map[string]any{
		"metric":  chaostest.ConvergeMetric,
		"samples": s.Count,
		"p50_ns":  s.P50,
		"p95_ns":  s.P95,
		"p99_ns":  s.P99,
		"sum_ns":  s.Sum,
		"buckets": s.Buckets,
		"host":    map[string]any{"cpus": runtime.NumCPU(), "go": runtime.Version()},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// quantiles renders one aggregated histogram as the bench-doc shape.
func quantiles(h *telemetry.Histogram) map[string]any {
	s := h.Snapshot()
	return map[string]any{
		"samples": s.Count,
		"p50_ns":  s.P50,
		"p95_ns":  s.P95,
		"p99_ns":  s.P99,
		"sum_ns":  s.Sum,
	}
}

func writeReconcileBench(path string) error {
	lossRate := 0.0
	if benchProbeSent > 0 {
		lossRate = float64(benchProbeLost) / float64(benchProbeSent)
	}
	doc := map[string]any{
		"reconcile_converge_ns": quantiles(benchReconcileConverge),
		"repair_ns":             quantiles(benchRepairNS),
		"probe": map[string]any{
			"rtt_ns":    quantiles(benchProbeRTT),
			"sent":      benchProbeSent,
			"lost":      benchProbeLost,
			"loss_rate": lossRate,
		},
		"host": map[string]any{"cpus": runtime.NumCPU(), "go": runtime.Version()},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// fabricTopo is the triangle fabric: three switches, a participant port
// subset on each, and redundant trunks (every pair directly linked).
func fabricTopo(ports map[sdx.PortID]string) sdx.FabricTopology {
	return sdx.FabricTopology{
		Switches: []string{"s1", "s2", "s3"},
		Ports:    ports,
		Links: []sdx.FabricLink{
			{A: "s1", B: "s2", PortA: 100, PortB: 101},
			{A: "s2", B: "s3", PortA: 102, PortB: 103},
			{A: "s1", B: "s3", PortA: 104, PortB: 105},
		},
	}
}

// multiswitchSpecs is the examples/multiswitch workload as a chaos
// deployment: A on s1 steers web traffic to B on s2 by policy while the
// BGP best path for the same prefix is C on s3.
func multiswitchSpecs() []chaostest.PeerSpec {
	pfx := sdx.MustParsePrefix
	return []chaostest.PeerSpec{
		{
			AS: 100, Port: 1,
			Outbound: []sdx.Term{
				sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
				sdx.Fwd(sdx.MatchAll.DstPort(443), 300),
			},
		},
		{
			AS: 200, Port: 2,
			Anns: []chaostest.Announcement{
				{Prefix: pfx("11.0.0.0/8"), Path: []uint32{200, 900}},
				{Prefix: pfx("12.0.0.0/8"), Path: []uint32{200}},
			},
		},
		{
			AS: 300, Port: 4,
			Anns: []chaostest.Announcement{
				{Prefix: pfx("11.0.0.0/8"), Path: []uint32{300}},
				{Prefix: pfx("13.0.0.0/8"), Path: []uint32{300}},
			},
		},
	}
}

// inboundTESpecs is the examples/inboundte workload: B is dual-homed
// across two switches (port 2 on s2, port 3 on s3) and splits inbound
// traffic by source prefix, which only works if both the policy rules
// and the trunk band survive on every switch.
func inboundTESpecs() []chaostest.PeerSpec {
	pfx := sdx.MustParsePrefix
	return []chaostest.PeerSpec{
		{
			AS: 100, Port: 1,
			Outbound: []sdx.Term{sdx.Fwd(sdx.MatchAll.DstPort(443), 300)},
		},
		{
			AS: 200, Port: 2, ExtraPorts: []sdx.PortID{3},
			Inbound: []sdx.Term{
				sdx.FwdPort(sdx.MatchAll.SrcIP(pfx("0.0.0.0/1")), 2),
				sdx.FwdPort(sdx.MatchAll.SrcIP(pfx("128.0.0.0/1")), 3),
			},
			Anns: []chaostest.Announcement{
				{Prefix: pfx("93.184.0.0/16"), Path: []uint32{200}},
			},
		},
		{
			AS: 300, Port: 4,
			Anns: []chaostest.Announcement{
				{Prefix: pfx("13.0.0.0/8"), Path: []uint32{300}},
			},
		},
	}
}

// fabricProbe is one end-to-end data-plane check: a packet injected on
// the remote fabric's ingress port must be delivered on the expected
// egress port, crossing trunk links where the switches differ.
type fabricProbe struct {
	desc    string
	ingress pkt.PortID
	egress  pkt.PortID
	prefix  iputil.Prefix // destination group: its VMAC tags the packet
	src     string
	dst     string
	dstPort uint16
}

func multiswitchProbes() []fabricProbe {
	pfx := sdx.MustParsePrefix
	return []fabricProbe{
		{desc: "web-via-B", ingress: 1, egress: 2, prefix: pfx("11.0.0.0/8"),
			src: "50.0.0.1", dst: "11.1.1.1", dstPort: 80},
		{desc: "default-via-C", ingress: 1, egress: 4, prefix: pfx("11.0.0.0/8"),
			src: "50.0.0.1", dst: "11.1.1.1", dstPort: 22},
	}
}

func inboundTEProbes() []fabricProbe {
	pfx := sdx.MustParsePrefix
	return []fabricProbe{
		{desc: "low-src-to-B1", ingress: 1, egress: 2, prefix: pfx("93.184.0.0/16"),
			src: "17.0.0.1", dst: "93.184.216.34", dstPort: 80},
		{desc: "high-src-to-B2", ingress: 1, egress: 3, prefix: pfx("93.184.0.0/16"),
			src: "212.0.0.1", dst: "93.184.216.34", dstPort: 80},
	}
}

// fabricState is everything a faulted fabric run must agree on with its
// golden twin, already normalized for cross-run comparison.
type fabricState struct {
	ribs   map[uint32]string
	canon  string
	tables map[string]string // per-switch rule dump
}

// settleAndCaptureFabric drives a converged fabric deployment quiescent
// and captures its state, asserting every remote switch's table is
// byte-identical to the local model's — the static trunk band included.
func settleAndCaptureFabric(t *testing.T, seed int64, fd *chaostest.FabricDeployment) fabricState {
	t.Helper()
	fd.Ctrl.Recompile()
	for _, name := range fd.SwitchNames() {
		client := fd.OFClient(name)
		if client == nil {
			t.Fatalf("seed %d: switch %s control channel down after convergence", seed, name)
		}
		if err := client.Barrier(); err != nil {
			t.Fatalf("seed %d: switch %s barrier: %v", seed, name, err)
		}
	}
	if n := fd.Ctrl.FastRules(); n != 0 {
		t.Fatalf("seed %d: %d fast-path rules survived the recompile", seed, n)
	}
	st := fabricState{ribs: make(map[uint32]string), tables: make(map[string]string)}
	for _, name := range fd.SwitchNames() {
		// Equality is polled, not asserted one-shot: with the continuous
		// reconciler running, a repair computed against the pre-recompile
		// intent may still be landing; it is drift on the next pass and
		// heals within a couple of reconcile intervals.
		var model, remote []string
		deadline := time.Now().Add(5 * time.Second)
		for {
			model, remote = fd.ModelRules(name), fd.RemoteRules(name)
			if strings.Join(model, "\n") == strings.Join(remote, "\n") {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: switch %s remote table diverges from model\n remote:\n  %s\n model:\n  %s",
					seed, name, strings.Join(remote, "\n  "), strings.Join(model, "\n  "))
			}
			time.Sleep(20 * time.Millisecond)
		}
		st.tables[name] = strings.Join(chaostest.Normalize(remote), "\n")
	}
	for as, p := range fd.Peers {
		st.ribs[as] = strings.Join(chaostest.Normalize(p.RIBDump()), "\n")
	}
	st.canon = chaostest.NormalizeText(fd.Ctrl.Compiled().Canonical())
	return st
}

// probeFabric pushes every probe through the remote fabric and waits for
// delivery on the expected egress port. Injections are retried: right
// after a heal a trunk may still be relinking, and chaos probes must
// tolerate loss, not reordering of state.
func probeFabric(t *testing.T, seed int64, fd *chaostest.FabricDeployment, probes []fabricProbe, label string) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[string]pkt.PortID) // payload marker -> delivery port
	record := func(port pkt.PortID) func(pkt.Packet) {
		return func(p pkt.Packet) {
			mu.Lock()
			got[string(p.Payload)] = port
			mu.Unlock()
		}
	}
	seen := make(map[pkt.PortID]bool)
	for _, pr := range probes {
		if seen[pr.egress] {
			continue
		}
		seen[pr.egress] = true
		if err := fd.OnDeliver(pr.egress, record(pr.egress)); err != nil {
			t.Fatalf("seed %d: %s: %v", seed, label, err)
		}
	}
	compiled := fd.Ctrl.Compiled()
	for i, pr := range probes {
		gi, ok := compiled.GroupIdx[pr.prefix]
		if !ok {
			t.Fatalf("seed %d: %s probe %q: prefix %s has no forwarding group", seed, label, pr.desc, pr.prefix)
		}
		vmac := compiled.VMACs[gi]
		deadline := time.Now().Add(5 * time.Second)
		attempt := 0
		for {
			attempt++
			marker := fmt.Sprintf("%s/%s#%d", label, pr.desc, attempt)
			fd.InjectRemote(pr.ingress, pkt.Packet{
				EthType: pkt.EthTypeIPv4, DstMAC: vmac,
				SrcIP: sdx.MustParseAddr(pr.src), DstIP: sdx.MustParseAddr(pr.dst),
				Proto: pkt.ProtoTCP, SrcPort: 40000 + uint16(i), DstPort: pr.dstPort,
				Payload: []byte(marker),
			})
			var at pkt.PortID
			delivered := false
			for waited := 0; waited < 10 && !delivered; waited++ {
				time.Sleep(20 * time.Millisecond)
				mu.Lock()
				at, delivered = got[marker]
				mu.Unlock()
			}
			if delivered {
				if at != pr.egress {
					t.Fatalf("seed %d: %s probe %q delivered at port %d, want %d", seed, label, pr.desc, at, pr.egress)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: %s probe %q never delivered at port %d after %d attempts",
					seed, label, pr.desc, pr.egress, attempt)
			}
		}
	}
}

// runFabricChaos is runChaos for the multi-switch stack: a golden and a
// faulted run per seed, per-trunk and per-channel faults including at
// least one asymmetric partition, and post-heal state plus end-to-end
// delivery equal to the fault-free run. Failures carry the seed.
//
// With reconcilerOnly set (opts must disable the audit and start the
// reconciler loop), post-heal convergence is attributed to the reconciler:
// the anti-entropy channel bounce never fires, so silently lost flow-mods
// heal only through reconcile passes, and the heal latency is recorded
// into ReconcileConvergeMetric instead of ConvergeMetric.
func runFabricChaos(t *testing.T, seed int64, specs []chaostest.PeerSpec, probes []fabricProbe, ports map[sdx.PortID]string, opts chaostest.Options, reconcilerOnly bool) {
	t.Helper()
	baseline := runtime.NumGoroutine()

	goldenNet := simnet.New(seed)
	golden, err := chaostest.StartFabric(goldenNet, seed, specs, fabricTopo(ports), opts)
	if err != nil {
		t.Fatalf("seed %d: golden start: %v", seed, err)
	}
	if err := golden.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("seed %d: golden run: %v", seed, err)
	}
	if err := golden.VerifyTables(); err != nil {
		t.Fatalf("seed %d: golden run tables: %v", seed, err)
	}
	want := settleAndCaptureFabric(t, seed, golden)
	probeFabric(t, seed, golden, probes, "golden")
	golden.Stop()
	goldenNet.Close()

	n := simnet.New(seed)
	fd, err := chaostest.StartFabric(n, seed, specs, fabricTopo(ports), opts)
	if err != nil {
		t.Fatalf("seed %d: start: %v", seed, err)
	}
	if err := fd.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("seed %d: pre-fault convergence: %v", seed, err)
	}

	script := simnet.GenScript(seed, fd.Targets())
	kinds := script.Kinds()
	if len(kinds) < 4 {
		t.Fatalf("seed %d: schedule injects only %v", seed, kinds)
	}
	directed := false
	for _, k := range kinds {
		if k == simnet.StepPartitionDir {
			directed = true
		}
	}
	if !directed {
		t.Fatalf("seed %d: schedule has no asymmetric partition:\n%s", seed, script)
	}
	if err := script.Run(context.Background(), n); err != nil {
		t.Fatalf("seed %d: script: %v", seed, err)
	}
	n.ResetTainted()

	var elapsed time.Duration
	if reconcilerOnly {
		elapsed, err = fd.WaitReconcileConvergedTimed(30 * time.Second)
	} else {
		elapsed, err = fd.WaitConvergedTimed(30 * time.Second)
	}
	if err != nil {
		t.Fatalf("seed %d: post-heal convergence: %v\nreproduce with this schedule:\n%s", seed, err, script)
	}
	if reconcilerOnly {
		benchReconcileConverge.Observe(int64(elapsed))
	} else {
		benchConverge.Observe(int64(elapsed))
	}
	if err := fd.VerifyTables(); err != nil {
		t.Errorf("seed %d: post-heal tables: %v", seed, err)
	}
	got := settleAndCaptureFabric(t, seed, fd)

	for as, wantRIB := range want.ribs {
		if got.ribs[as] != wantRIB {
			t.Errorf("seed %d: AS%d post-heal Loc-RIB != fault-free run\n got:\n  %s\n want:\n  %s\nschedule:\n%s",
				seed, as, strings.ReplaceAll(got.ribs[as], "\n", "\n  "),
				strings.ReplaceAll(wantRIB, "\n", "\n  "), script)
		}
	}
	if got.canon != want.canon {
		t.Errorf("seed %d: post-heal compilation != fault-free run\n got:\n%s\n want:\n%s\nschedule:\n%s",
			seed, got.canon, want.canon, script)
	}
	for name, wantTable := range want.tables {
		if got.tables[name] != wantTable {
			t.Errorf("seed %d: switch %s post-heal table != fault-free run\n got:\n  %s\n want:\n  %s\nschedule:\n%s",
				seed, name, strings.ReplaceAll(got.tables[name], "\n", "\n  "),
				strings.ReplaceAll(wantTable, "\n", "\n  "), script)
		}
	}
	probeFabric(t, seed, fd, probes, "faulted")

	reg := fd.Ctrl.Metrics()
	if reconcilerOnly {
		if c := reg.Histogram(chaostest.ReconcileConvergeMetric).Count(); c < 1 {
			t.Errorf("seed %d: no %s sample recorded for the post-heal convergence", seed, chaostest.ReconcileConvergeMetric)
		}
		if p := reg.Counter("reconcile.passes").Value(); p == 0 {
			t.Errorf("seed %d: reconciler loop never ran a pass", seed)
		}
		// The dataplane liveness probes must recover along with the
		// tables: every pair healthy once forwarding is restored.
		deadline := time.Now().Add(15 * time.Second)
		for !fd.Prb.Healthy() {
			if time.Now().After(deadline) {
				t.Errorf("seed %d: probe pairs still unhealthy after heal: %+v", seed, fd.Prb.Health())
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		benchRepairNS.Merge(reg.Histogram("reconcile.repair_ns").Snapshot())
		benchProbeRTT.Merge(reg.Histogram("probe.rtt_ns").Snapshot())
		benchProbeSent += reg.Counter("probe.sent").Value()
		benchProbeLost += reg.Counter("probe.lost").Value()
	} else {
		if c := reg.Histogram(chaostest.ConvergeMetric).Count(); c < 1 {
			t.Errorf("seed %d: no %s sample recorded for the post-heal convergence", seed, chaostest.ConvergeMetric)
		}
	}
	fd.Stop()
	n.Close()
	waitGoroutines(t, seed, baseline)
}

// chaosFabricSeeds is the fabric seed matrix CI replays; disjoint from
// the single-switch matrix so the two jobs exercise different schedules.
var chaosFabricSeeds = []int64{5, 17, 29}

// TestChaosFabricConvergence: the multiswitch workload across a
// three-switch triangle fabric survives per-trunk, per-channel and
// per-session faults — including one-direction partitions — and
// converges back to the fault-free state, trunk band and cross-switch
// delivery included.
func TestChaosFabricConvergence(t *testing.T) {
	ports := map[sdx.PortID]string{1: "s1", 2: "s2", 4: "s3"}
	for _, seed := range chaosFabricSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFabricChaos(t, seed, multiswitchSpecs(), multiswitchProbes(), ports, chaostest.Options{}, false)
		})
	}
}

// TestChaosFabricReconcilerOnly: the same workload and fault schedules
// with the harness's anti-entropy channel bounce disabled — installed
// tables heal only through the continuous reconciler, and the dataplane
// liveness prober must report every participant pair healthy after the
// heal. Heal latencies land in reconcile_converge_ns, reported separately
// from the audit-driven chaos_converge_ns.
func TestChaosFabricReconcilerOnly(t *testing.T) {
	ports := map[sdx.PortID]string{1: "s1", 2: "s2", 4: "s3"}
	seeds := chaosFabricSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	opts := chaostest.Options{
		DisableAudit:      true,
		ReconcileInterval: 25 * time.Millisecond,
		ProbeInterval:     40 * time.Millisecond,
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFabricChaos(t, seed, multiswitchSpecs(), multiswitchProbes(), ports, opts, true)
		})
	}
}

// TestChaosFabricInboundTE: the inbound-TE workload with a participant
// dual-homed across two switches; inbound steering by source prefix must
// survive the chaos schedule on every switch it spans.
func TestChaosFabricInboundTE(t *testing.T) {
	if testing.Short() {
		t.Skip("second fabric workload skipped in -short mode")
	}
	ports := map[sdx.PortID]string{1: "s1", 2: "s2", 3: "s3", 4: "s3"}
	for _, seed := range chaosFabricSeeds[:1] {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFabricChaos(t, seed, inboundTESpecs(), inboundTEProbes(), ports, chaostest.Options{}, false)
		})
	}
}
