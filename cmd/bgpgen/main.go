// Command bgpgen synthesizes BGP update traces with the statistical
// shape of the paper's Table 1 / §4.3.2 analysis (bursty arrivals, heavy-
// tailed burst sizes, a small updated-prefix fraction) and writes them as
// one line per update:
//
//	<offset-ms> <peer-as> announce <prefix> <as-path...>
//	<offset-ms> <peer-as> withdraw <prefix>
//
// The trace replays against an SDX controller with `sdx-bench` or any
// consumer of the textual format.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sdx/internal/workload"
)

func main() {
	participants := flag.Int("participants", 100, "IXP participants")
	prefixes := flag.Int("prefixes", 10000, "announced prefixes")
	updates := flag.Int("updates", 100000, "updates to generate")
	fraction := flag.Float64("updated-fraction", 0.12, "fraction of prefixes that see updates")
	withdraw := flag.Float64("withdraw-fraction", 0.2, "fraction of updates that are withdrawals")
	seed := flag.Int64("seed", 1, "generator seed")
	stats := flag.Bool("stats", false, "print Table 1-style statistics instead of the trace")
	churn := flag.Bool("churn", false, "sustained hot-prefix churn instead of Table 1 bursts")
	hotFraction := flag.Float64("hot-fraction", 0.01, "churn: fraction of prefixes forming the hot set")
	hotShare := flag.Float64("hot-share", 0.8, "churn: fraction of updates aimed at the hot set")
	profile := flag.String("profile", "", "full-table scale profile (ci, quarter, full); overrides -participants/-prefixes/-updates and implies -churn")
	flag.Parse()

	if *profile != "" {
		sp, ok := workload.LookupScaleProfile(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "bgpgen: unknown profile %q\n", *profile)
			os.Exit(2)
		}
		*participants, *prefixes, *updates = sp.Participants, sp.Prefixes, sp.Updates
		*churn = true
	}

	x := workload.NewIXP(workload.DefaultTopology(*participants, *prefixes, *seed))
	var tr *workload.Trace
	if *churn {
		cfg := workload.DefaultChurn(*updates, *seed)
		cfg.HotFraction = *hotFraction
		cfg.HotShare = *hotShare
		cfg.WithdrawFraction = *withdraw
		tr = workload.GenerateChurn(x, cfg)
	} else {
		tr = workload.GenerateTrace(x, workload.TraceConfig{
			Seed: *seed, Updates: *updates,
			UpdatedFraction: *fraction, WithdrawFraction: *withdraw,
		})
	}

	if *stats {
		st := tr.Stats(*prefixes)
		fmt.Printf("updates            %d\n", st.Updates)
		fmt.Printf("prefixes updated   %d (%.2f%% of %d)\n", st.PrefixesUpdated, st.UpdatedFraction*100, *prefixes)
		fmt.Printf("bursts             %d (P75 size %d, max %d)\n", st.Bursts, st.BurstP75, st.MaxBurst)
		fmt.Printf("inter-arrival      P25 %v, median %v\n", st.InterArrivalP25, st.InterArrivalP50)
		fmt.Printf("trace duration     %v\n", st.Duration)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range tr.Events {
		if len(e.Update.Withdrawn) > 0 {
			fmt.Fprintf(w, "%d %d withdraw %s\n", e.At.Milliseconds(), e.Peer, e.Update.Withdrawn[0])
			continue
		}
		fmt.Fprintf(w, "%d %d announce %s", e.At.Milliseconds(), e.Peer, e.Update.NLRI[0])
		for _, as := range e.Update.Attrs.ASPath {
			fmt.Fprintf(w, " %d", as)
		}
		fmt.Fprintln(w)
	}
}
