// Command sdx-lint runs the SDX static-analysis suite (internal/lint) over
// the module and prints findings as "file:line: [analyzer] message" lines
// (or JSON with -json). It exits 1 when there are findings, 2 on usage or
// load errors.
//
// Usage:
//
//	go run ./cmd/sdx-lint ./...          # whole module
//	go run ./cmd/sdx-lint internal/bgp   # specific package directories
//	go run ./cmd/sdx-lint -json ./...    # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sdx/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	listAnalyzers := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdx-lint [-json] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Analyzers())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(relativize(d))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sdx-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// load resolves the argument patterns to type-checked packages. "./..."
// (or no arguments) loads the whole module; anything else is taken as a
// package directory.
func load(args []string) ([]*lint.Package, error) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		dir := filepath.Clean(arg)
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleRoot(), abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", arg, loader.ModulePath())
		}
		path := loader.ModulePath()
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(abs, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// relativize shortens absolute file paths to module-relative ones for
// readable terminal output.
func relativize(d lint.Diagnostic) string {
	wd, err := os.Getwd()
	if err != nil {
		return d.String()
	}
	if rel, err := filepath.Rel(wd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
		d.File = rel
	}
	return d.String()
}
