// Command sdx-lint runs the SDX static-analysis suite (internal/lint) over
// the module and prints findings as "file:line: [analyzer] message" lines
// (or JSON with -json). With -tables it instead runs the classifier
// semantic verifier (internal/verify) over the standard compiletest
// workload corpus, checking every compiled flow table for equal-priority
// conflicts and shadowed rules.
//
// Usage:
//
//	go run ./cmd/sdx-lint ./...                    # whole module
//	go run ./cmd/sdx-lint internal/bgp             # specific package directories
//	go run ./cmd/sdx-lint -json ./...              # machine-readable output
//	go run ./cmd/sdx-lint -analyzers riblock ./... # subset of analyzers
//	go run ./cmd/sdx-lint -json -o report.json ./... # JSON report to a file
//	go run ./cmd/sdx-lint -tables -workloads 50    # verify compiled tables
//	go run ./cmd/sdx-lint -list                    # list analyzers
//
// Exit codes:
//
//	0  no findings
//	1  at least one finding (lint diagnostic or verifier conflict)
//	2  usage, load, or workload-build error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sdx/internal/compiletest"
	"sdx/internal/lint"
	"sdx/internal/verify"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	outFile := flag.String("o", "", "also write the JSON report to this file")
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	tablesFlag := flag.Bool("tables", false, "verify compiled flow tables over the compiletest corpus instead of linting source")
	workloads := flag.Int("workloads", compiletest.CorpusSize, "number of corpus workloads to verify with -tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdx-lint [-json] [-o file] [-analyzers a,b] [./... | dir ...]\n")
		fmt.Fprintf(os.Stderr, "       sdx-lint -tables [-workloads n] [-json] [-o file]\n")
		fmt.Fprintf(os.Stderr, "       sdx-lint -list\n")
		fmt.Fprintf(os.Stderr, "exit codes: 0 no findings, 1 findings, 2 usage/load error\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *tablesFlag {
		os.Exit(runTables(*workloads, *jsonOut, *outFile))
	}

	analyzers, err := selectAnalyzers(*analyzersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if diags == nil {
		diags = []lint.Diagnostic{}
	}

	if *outFile != "" {
		if err := writeJSONFile(*outFile, diags); err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := encodeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(relativize(d))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "sdx-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers flag: empty means the full
// suite, otherwise a comma-separated list of names from -list.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers %q selects nothing", spec)
	}
	return out, nil
}

// tableFinding is one verifier finding tagged with its corpus case.
type tableFinding struct {
	Case int `json:"case"`
	verify.Finding
}

// tablesReport is the -tables JSON document.
type tablesReport struct {
	Workloads int            `json:"workloads"`
	Rules     int            `json:"rules"`
	Findings  []tableFinding `json:"findings"`
}

// runTables compiles each corpus workload (replaying its update bursts
// through the incremental path, as the differential suite does) and runs
// the semantic verifier over the installed table and classifier bands.
func runTables(n int, jsonOut bool, outFile string) int {
	report := tablesReport{Workloads: n, Findings: []tableFinding{}}
	for i := 0; i < n; i++ {
		w, bursts := compiletest.CorpusWorkload(i)
		in, err := compiletest.Build(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: case %d: %v\n", i, err)
			return 2
		}
		in.Compile(false)
		if bursts > 0 {
			in.Replay(in.Trace(bursts*3, w.Seed+99))
		}
		rep := verify.Table(in.Ctrl.Switch().Table())
		if c := in.Ctrl.Compiled(); c != nil {
			bands := verify.Compiled(c)
			rep.Rules += bands.Rules
			rep.Findings = append(rep.Findings, bands.Findings...)
		}
		report.Rules += rep.Rules
		for _, f := range rep.Findings {
			report.Findings = append(report.Findings, tableFinding{Case: i, Finding: f})
			if !jsonOut {
				fmt.Printf("case %03d: %s\n", i, f.String())
			}
		}
	}
	if outFile != "" {
		if err := writeJSONFile(outFile, report); err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
			return 2
		}
	}
	if jsonOut {
		if err := encodeJSON(os.Stdout, report); err != nil {
			fmt.Fprintf(os.Stderr, "sdx-lint: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(os.Stderr, "sdx-lint: %d workload(s), %d rule(s) verified, %d finding(s)\n",
			report.Workloads, report.Rules, len(report.Findings))
	}
	if len(report.Findings) > 0 {
		return 1
	}
	return 0
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encodeJSON(f, v); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// load resolves the argument patterns to type-checked packages. "./..."
// (or no arguments) loads the whole module; anything else is taken as a
// package directory.
func load(args []string) ([]*lint.Package, error) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		dir := filepath.Clean(arg)
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleRoot(), abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", arg, loader.ModulePath())
		}
		path := loader.ModulePath()
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(abs, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// relativize shortens absolute file paths to module-relative ones for
// readable terminal output.
func relativize(d lint.Diagnostic) string {
	wd, err := os.Getwd()
	if err != nil {
		return d.String()
	}
	if rel, err := filepath.Rel(wd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
		d.File = rel
	}
	return d.String()
}
