// Command sdx-replay replays a textual BGP update trace (the format
// cmd/bgpgen emits) against an SDX:
//
//	bgpgen -participants 50 -prefixes 5000 -updates 2000 > trace.txt
//	sdx-replay -participants 50 -prefixes 5000 < trace.txt
//
// By default the exchange is rebuilt in-process from the same topology
// flags (and seed) the trace was generated with, the §6.1 policy mix is
// installed, and the replay reports the incremental-update metrics of the
// paper's §6.3: fast-path latency percentiles, additional rules, and
// background recompilations.
//
// With -target <host:port>, updates are instead streamed to a running
// sdxd over real BGP sessions, one per distinct peer in the trace (the
// peers must be registered participants there).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdx/internal/bgp"
	"sdx/internal/core"
	"sdx/internal/iputil"
	"sdx/internal/workload"
)

func main() {
	participants := flag.Int("participants", 100, "IXP participants (must match the trace's generator)")
	prefixes := flag.Int("prefixes", 10000, "announced prefixes (must match the trace's generator)")
	seed := flag.Int64("seed", 1, "topology seed (must match the trace's generator)")
	target := flag.String("target", "", "stream to a running sdxd at host:port instead of replaying in-process")
	recompileEvery := flag.Int("recompile-every", 500, "run the background optimization after this many updates (0 = never)")
	metrics := flag.Bool("metrics", false, "print the controller's telemetry registry after an in-process replay")
	flag.Parse()

	events, err := readTrace(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d updates from %d peers", len(events), countPeers(events))

	if *target != "" {
		if err := stream(*target, events); err != nil {
			log.Fatal(err)
		}
		return
	}

	x := workload.NewIXP(workload.DefaultTopology(*participants, *prefixes, *seed))
	ctrl, err := workload.Load(x)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.InstallPolicies(ctrl, workload.AssignPolicies(x, workload.DefaultPolicyMix(*seed))); err != nil {
		log.Fatal(err)
	}
	rep := ctrl.Recompile()
	log.Printf("exchange ready: %d groups, %d rules", rep.Groups, rep.Rules)

	var times []time.Duration
	additional, affected, recompiles := 0, 0, 0
	start := time.Now()
	for i, e := range events {
		res := ctrl.ProcessUpdate(e.peer, e.update)
		times = append(times, res.Elapsed)
		additional += res.AdditionalRules
		affected += res.AffectedGroups
		if *recompileEvery > 0 && (i+1)%*recompileEvery == 0 {
			ctrl.Recompile()
			recompiles++
		}
	}
	wall := time.Since(start)
	ctrl.Recompile()

	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	pct := func(p float64) time.Duration { return times[int(p*float64(len(times)-1))] }
	fmt.Printf("updates           %d in %v (%.0f/s)\n",
		len(events), wall.Round(time.Millisecond), float64(len(events))/wall.Seconds())
	fmt.Printf("policy-affected   %d updates, %d fast-band rules pushed\n", affected, additional)
	fmt.Printf("fast path         P50 %v  P90 %v  P99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("recompilations    %d background + 1 final; final table %d rules\n",
		recompiles, ctrl.Switch().Table().Len())
	if *metrics {
		fmt.Printf("--- telemetry ---\n")
		ctrl.Metrics().WriteText(os.Stdout)
	}
}

type traceEvent struct {
	at     time.Duration
	peer   uint32
	update *bgp.Update
}

func readTrace(f *os.File) ([]traceEvent, error) {
	var out []traceEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("line %d: too few fields", lineno)
		}
		ms, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad offset %q", lineno, fields[0])
		}
		peer, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad peer %q", lineno, fields[1])
		}
		prefix, err := iputil.ParsePrefix(fields[3])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		ev := traceEvent{at: time.Duration(ms) * time.Millisecond, peer: uint32(peer)}
		switch fields[2] {
		case "withdraw":
			ev.update = &bgp.Update{Withdrawn: []iputil.Prefix{prefix}}
		case "announce":
			attrs := &bgp.PathAttrs{NextHop: core.PortIP(1)}
			for _, a := range fields[4:] {
				asn, err := strconv.ParseUint(a, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad AS %q", lineno, a)
				}
				attrs.ASPath = append(attrs.ASPath, uint32(asn))
			}
			if len(attrs.ASPath) == 0 {
				attrs.ASPath = []uint32{uint32(peer)}
			}
			ev.update = &bgp.Update{Attrs: attrs, NLRI: []iputil.Prefix{prefix}}
		default:
			return nil, fmt.Errorf("line %d: unknown verb %q", lineno, fields[2])
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

func countPeers(events []traceEvent) int {
	seen := map[uint32]bool{}
	for _, e := range events {
		seen[e.peer] = true
	}
	return len(seen)
}

// stream pushes the trace to a remote route server over one BGP session
// per peer.
func stream(target string, events []traceEvent) error {
	sessions := map[uint32]*bgp.Session{}
	defer func() {
		for _, s := range sessions {
			// Close sends a best-effort CEASE; the replay is already done.
			_ = s.Close()
		}
	}()
	sent := 0
	start := time.Now()
	for _, e := range events {
		sess := sessions[e.peer]
		if sess == nil {
			conn, err := net.Dial("tcp", target)
			if err != nil {
				return err
			}
			sess, err = bgp.Establish(conn, bgp.SessionConfig{
				LocalAS:  e.peer,
				RouterID: iputil.Addr(e.peer),
			})
			if err != nil {
				return fmt.Errorf("peer AS%d: %w", e.peer, err)
			}
			sess.Start()
			sessions[e.peer] = sess
		}
		if err := sess.SendUpdate(e.update); err != nil {
			return fmt.Errorf("peer AS%d: %w", e.peer, err)
		}
		sent++
	}
	log.Printf("streamed %d updates over %d sessions in %v",
		sent, len(sessions), time.Since(start).Round(time.Millisecond))
	return nil
}
