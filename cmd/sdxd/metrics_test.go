package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdx"
	"sdx/internal/bgp"
	"sdx/internal/dataplane"
	"sdx/internal/iputil"
	"sdx/internal/reconcile"
)

// TestMetricsMux drives an in-process controller through a BGP burst and a
// compilation, then checks each observability endpoint the -metrics flag
// exposes.
func TestMetricsMux(t *testing.T) {
	ctrl := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	const burst = 10
	for i := 0; i < burst; i++ {
		ctrl.ProcessUpdate(200, &sdx.Update{
			Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: sdx.PortIP(2)},
			NLRI:  []iputil.Prefix{sdx.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))},
		})
	}
	ctrl.Recompile()

	mux := newMetricsMux(ctrl, nil, nil)
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	var snap sdx.Snapshot
	if err := json.Unmarshal(get("/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Counters["controller.updates_in"] != burst {
		t.Fatalf("updates_in = %d, want %d", snap.Counters["controller.updates_in"], burst)
	}
	h := snap.Histograms["controller.compile_ns"]
	if h.Count < 1 || h.Sum == 0 {
		t.Fatalf("compile_ns histogram empty after Recompile: %+v", h)
	}

	text := get("/metrics/text")
	if ct := text.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/metrics/text content type %q", ct)
	}
	if body := text.Body.String(); !strings.Contains(body, "controller.updates_in") {
		t.Fatalf("/metrics/text missing updates_in:\n%s", body)
	}

	var events []sdx.Event
	if err := json.Unmarshal(get("/trace").Body.Bytes(), &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/trace returned no events")
	}
}

// TestHealthEndpoint checks the /health JSON summary in three states: no
// loops wired at all, a reconciler that has not yet passed, and one that
// has completed a clean pass.
func TestHealthEndpoint(t *testing.T) {
	ctrl := sdx.New()

	getHealth := func(mux http.Handler) map[string]json.RawMessage {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /health: status %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/health content type %q", ct)
		}
		var out map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("/health: %v", err)
		}
		return out
	}

	// No loops: vacuously healthy, no component sections.
	out := getHealth(newMetricsMux(ctrl, nil, nil))
	if string(out["healthy"]) != "true" {
		t.Fatalf("no-loop health = %s, want true", out["healthy"])
	}
	if _, ok := out["reconcile"]; ok {
		t.Fatal("reconcile section present without a reconciler")
	}
	if _, ok := out["probe"]; ok {
		t.Fatal("probe section present without a prober")
	}

	// A reconciler over the controller's own local table: intended and
	// installed are the same snapshot, so one pass is clean.
	table := ctrl.Switch().Table()
	rec := reconcile.New(reconcile.Config{}, reconcile.Target{
		Name:      "local",
		Intended:  table.Entries,
		Installed: func() ([]*dataplane.FlowEntry, bool) { return table.Entries(), true },
		Sink:      func() reconcile.Sink { return nil },
	})
	mux := newMetricsMux(ctrl, rec, nil)

	out = getHealth(mux)
	if string(out["healthy"]) != "false" {
		t.Fatalf("pre-pass health = %s, want false", out["healthy"])
	}

	if sum := rec.RunOnce(); !sum.Clean {
		t.Fatalf("local pass not clean: %+v", sum)
	}
	out = getHealth(mux)
	if string(out["healthy"]) != "true" {
		t.Fatalf("post-pass health = %s, want true", out["healthy"])
	}
	var rh struct {
		Healthy bool `json:"healthy"`
		Last    struct {
			Pass  int  `json:"Pass"`
			Clean bool `json:"Clean"`
		} `json:"last"`
	}
	if err := json.Unmarshal(out["reconcile"], &rh); err != nil {
		t.Fatalf("reconcile section: %v", err)
	}
	if !rh.Healthy || rh.Last.Pass != 1 || !rh.Last.Clean {
		t.Fatalf("reconcile section = %+v", rh)
	}
}
