package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdx"
	"sdx/internal/bgp"
	"sdx/internal/dataplane"
	"sdx/internal/flow"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
)

// TestMetricsMux drives an in-process controller through a BGP burst and a
// compilation, then checks each observability endpoint the -metrics flag
// exposes.
func TestMetricsMux(t *testing.T) {
	ctrl := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	const burst = 10
	for i := 0; i < burst; i++ {
		ctrl.ProcessUpdate(200, &sdx.Update{
			Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: sdx.PortIP(2)},
			NLRI:  []iputil.Prefix{sdx.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))},
		})
	}
	ctrl.Recompile()

	mux := newMetricsMux(ctrl, nil, nil, nil)
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	var snap sdx.Snapshot
	if err := json.Unmarshal(get("/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Counters["controller.updates_in"] != burst {
		t.Fatalf("updates_in = %d, want %d", snap.Counters["controller.updates_in"], burst)
	}
	h := snap.Histograms["controller.compile_ns"]
	if h.Count < 1 || h.Sum == 0 {
		t.Fatalf("compile_ns histogram empty after Recompile: %+v", h)
	}

	text := get("/metrics/text")
	if ct := text.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/metrics/text content type %q", ct)
	}
	if body := text.Body.String(); !strings.Contains(body, "controller.updates_in") {
		t.Fatalf("/metrics/text missing updates_in:\n%s", body)
	}

	var events []sdx.Event
	if err := json.Unmarshal(get("/trace").Body.Bytes(), &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/trace returned no events")
	}
}

// getHealth fetches /health, asserts the HTTP status (the orchestrator
// gate: 200 healthy, 503 unhealthy), and decodes the JSON body.
func getHealth(t *testing.T, mux http.Handler, wantStatus int) map[string]json.RawMessage {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != wantStatus {
		t.Fatalf("GET /health: status %d, want %d (body %s)", rec.Code, wantStatus, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/health content type %q", ct)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/health: %v", err)
	}
	return out
}

// failingList decodes the "failing" component list from a /health body.
func failingList(t *testing.T, out map[string]json.RawMessage) []string {
	t.Helper()
	var failing []string
	if raw, ok := out["failing"]; ok {
		if err := json.Unmarshal(raw, &failing); err != nil {
			t.Fatalf("failing list: %v", err)
		}
	}
	return failing
}

// TestHealthEndpoint checks the /health JSON summary in three states: no
// loops wired at all, a reconciler that has not yet passed (503 with the
// failing component named — the regression the unconditional-200 bug
// hid), and one that has completed a clean pass.
func TestHealthEndpoint(t *testing.T) {
	ctrl := sdx.New()

	// No loops: vacuously healthy, no component sections.
	out := getHealth(t, newMetricsMux(ctrl, nil, nil, nil), 200)
	if string(out["healthy"]) != "true" {
		t.Fatalf("no-loop health = %s, want true", out["healthy"])
	}
	if _, ok := out["reconcile"]; ok {
		t.Fatal("reconcile section present without a reconciler")
	}
	if _, ok := out["probe"]; ok {
		t.Fatal("probe section present without a prober")
	}

	// A reconciler over the controller's own local table: intended and
	// installed are the same snapshot, so one pass is clean.
	table := ctrl.Switch().Table()
	rec := reconcile.New(reconcile.Config{}, reconcile.Target{
		Name:      "local",
		Intended:  table.Entries,
		Installed: func() ([]*dataplane.FlowEntry, bool) { return table.Entries(), true },
		Sink:      func() reconcile.Sink { return nil },
	})
	mux := newMetricsMux(ctrl, rec, nil, nil)

	// Pre-pass the reconciler has proven nothing: the gate must fail
	// closed with 503, not report ready.
	out = getHealth(t, mux, http.StatusServiceUnavailable)
	if string(out["healthy"]) != "false" {
		t.Fatalf("pre-pass health = %s, want false", out["healthy"])
	}
	if failing := failingList(t, out); len(failing) != 1 || failing[0] != "reconcile" {
		t.Fatalf("pre-pass failing = %v, want [reconcile]", failing)
	}

	if sum := rec.RunOnce(); !sum.Clean {
		t.Fatalf("local pass not clean: %+v", sum)
	}
	out = getHealth(t, mux, 200)
	if string(out["healthy"]) != "true" {
		t.Fatalf("post-pass health = %s, want true", out["healthy"])
	}
	if failing := failingList(t, out); len(failing) != 0 {
		t.Fatalf("post-pass failing = %v, want empty", failing)
	}
	var rh struct {
		Healthy bool `json:"healthy"`
		Last    struct {
			Pass  int  `json:"Pass"`
			Clean bool `json:"Clean"`
		} `json:"last"`
	}
	if err := json.Unmarshal(out["reconcile"], &rh); err != nil {
		t.Fatalf("reconcile section: %v", err)
	}
	if !rh.Healthy || rh.Last.Pass != 1 || !rh.Last.Clean {
		t.Fatalf("reconcile section = %+v", rh)
	}
}

// TestHealthEndpointProbeUnhealthy is the prober half of the /health 503
// regression: a pair whose probes black-hole must flip the endpoint to
// 503 and name the pair, and a recovering pair must restore 200.
func TestHealthEndpointProbeUnhealthy(t *testing.T) {
	ctrl := sdx.New()

	// A virtual clock and an inject that accepts every probe but never
	// delivers it: each RunOnce past the timeout sweeps one loss. The
	// last swallowed probe is kept so the recovery phase can deliver it.
	now := int64(0)
	var lastProbe pkt.Packet
	blackhole := func(port pkt.PortID, p pkt.Packet) bool {
		lastProbe = p
		return true
	}
	prb := probe.New(probe.Config{
		Timeout:        time.Second,
		UnhealthyAfter: 3,
		NowNS:          func() int64 { return now },
	}, blackhole, probe.Pair{From: 1, To: 2})
	mux := newMetricsMux(ctrl, nil, prb, nil)

	// Fresh pairs start healthy: 200 before any evidence of loss.
	out := getHealth(t, mux, 200)
	if string(out["healthy"]) != "true" {
		t.Fatalf("fresh-prober health = %s, want true", out["healthy"])
	}

	// Three consecutive timed-out probes cross UnhealthyAfter.
	for i := 0; i < 4; i++ {
		prb.RunOnce()
		now += 2 * time.Second.Nanoseconds()
	}
	out = getHealth(t, mux, http.StatusServiceUnavailable)
	if string(out["healthy"]) != "false" {
		t.Fatalf("lossy-prober health = %s, want false", out["healthy"])
	}
	if failing := failingList(t, out); len(failing) != 1 || failing[0] != "probe:1->2" {
		t.Fatalf("lossy-prober failing = %v, want [probe:1->2]", failing)
	}

	// Delivering a fresh probe resets the streak and reopens the gate.
	prb.RunOnce() // sends one more probe, captured by blackhole
	if !prb.Deliver(2, lastProbe) {
		t.Fatal("prober did not consume its own probe")
	}
	out = getHealth(t, mux, 200)
	if string(out["healthy"]) != "true" {
		t.Fatalf("recovered-prober health = %s, want true", out["healthy"])
	}
}

// TestFlowsEndpoint checks /flows in both states: 404 when analytics is
// disabled, and the flows/top JSON when an Analytics is wired.
func TestFlowsEndpoint(t *testing.T) {
	ctrl := sdx.New()

	// Disabled: 404 so orchestration can tell "off" from "empty".
	rec := httptest.NewRecorder()
	newMetricsMux(ctrl, nil, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/flows", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/flows with analytics off: status %d, want 404", rec.Code)
	}

	// Wired: one ingested record shows up in flows and top.
	ch := make(chan flow.Record, 1)
	ana := flow.NewAnalytics(flow.Config{SampleRate: 10, Alpha: 1}, ch, nil, ctrl.Metrics())
	ana.Ingest(flow.Record{
		Key: flow.Key{
			SrcIP: sdx.MustParseAddr("10.0.0.1"), DstIP: sdx.MustParseAddr("20.0.0.1"),
			Proto: pkt.ProtoTCP, SrcPort: 40000, DstPort: 80, InPort: 1,
		},
		Cookie: 7, Egress: 2, FrameLen: 100,
	})
	ana.Tick()

	rec = httptest.NewRecorder()
	newMetricsMux(ctrl, nil, nil, ana).ServeHTTP(rec, httptest.NewRequest("GET", "/flows", nil))
	if rec.Code != 200 {
		t.Fatalf("/flows: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/flows content type %q", ct)
	}
	var out struct {
		Flows []flow.FlowStat `json:"flows"`
		Top   []flow.TopEntry `json:"top"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/flows: %v", err)
	}
	if len(out.Flows) != 1 || out.Flows[0].EstBytes != 1000 || out.Flows[0].Egress != 2 {
		t.Fatalf("/flows flows = %+v", out.Flows)
	}
	if len(out.Top) != 1 || out.Top[0].Key.DstPort != 80 {
		t.Fatalf("/flows top = %+v", out.Top)
	}
}
