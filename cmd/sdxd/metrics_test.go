package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"sdx"
	"sdx/internal/bgp"
	"sdx/internal/iputil"
)

// TestMetricsMux drives an in-process controller through a BGP burst and a
// compilation, then checks each observability endpoint the -metrics flag
// exposes.
func TestMetricsMux(t *testing.T) {
	ctrl := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	const burst = 10
	for i := 0; i < burst; i++ {
		ctrl.ProcessUpdate(200, &sdx.Update{
			Attrs: &bgp.PathAttrs{ASPath: []uint32{200}, NextHop: sdx.PortIP(2)},
			NLRI:  []iputil.Prefix{sdx.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))},
		})
	}
	ctrl.Recompile()

	mux := newMetricsMux(ctrl)
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	var snap sdx.Snapshot
	if err := json.Unmarshal(get("/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Counters["controller.updates_in"] != burst {
		t.Fatalf("updates_in = %d, want %d", snap.Counters["controller.updates_in"], burst)
	}
	h := snap.Histograms["controller.compile_ns"]
	if h.Count < 1 || h.Sum == 0 {
		t.Fatalf("compile_ns histogram empty after Recompile: %+v", h)
	}

	text := get("/metrics/text")
	if ct := text.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/metrics/text content type %q", ct)
	}
	if body := text.Body.String(); !strings.Contains(body, "controller.updates_in") {
		t.Fatalf("/metrics/text missing updates_in:\n%s", body)
	}

	var events []sdx.Event
	if err := json.Unmarshal(get("/trace").Body.Bytes(), &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/trace returned no events")
	}
}
