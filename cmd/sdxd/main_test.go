package main

import (
	"os"
	"path/filepath"
	"testing"

	"sdx"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "exchange.conf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfig(t *testing.T) {
	ctrl := sdx.New()
	path := writeConfig(t, `
# Figure 1 exchange
communities 64512
participant 100 A 1
participant 200 B 2 3
participant 400 tenant -

policy 100 out fwd 200 dstport 80
policy 100 out drop dstport 25
policy 200 in port 2 srcip 0.0.0.0/1
policy 200 in port 3 srcip 128.0.0.0/1
`)
	ports, err := loadConfig(ctrl, path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []sdx.PortID{1, 2, 3}; len(ports) != len(want) || ports[0] != 1 || ports[1] != 2 || ports[2] != 3 {
		t.Fatalf("ports = %v, want %v", ports, want)
	}
	for _, as := range []uint32{100, 200, 400} {
		if _, ok := ctrl.Participant(as); !ok {
			t.Fatalf("participant AS%d missing", as)
		}
	}
	p, _ := ctrl.Participant(400)
	if len(p.Ports()) != 0 {
		t.Fatal("tenant should be remote")
	}
	rep := ctrl.Recompile()
	if rep.Rules == 0 {
		// No routes yet, but the inbound policies alone produce no rules
		// either (no announced prefixes). That's fine; loadConfig's job
		// is registration + validation.
		_ = rep
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		conf string
	}{
		{"bad directive", "frobnicate 1 2 3"},
		{"bad communities", "communities zero one"},
		{"zero communities AS", "communities 0"},
		{"short participant", "participant 100"},
		{"bad AS", "participant xx A 1"},
		{"bad port", "participant 100 A yy"},
		{"duplicate participant", "participant 100 A 1\nparticipant 100 B 2"},
		{"policy for unknown AS", "policy 999 out fwd 1 dstport 80"},
		{"bad policy action", "participant 100 A 1\npolicy 100 out teleport 3"},
		{"inbound fwd", "participant 100 A 1\npolicy 100 in fwd 200"},
		{"outbound port", "participant 100 A 1\npolicy 100 out port 1"},
		{"dangling match", "participant 100 A 1\npolicy 100 out drop dstport"},
		{"bad dstport", "participant 100 A 1\npolicy 100 out drop dstport zz"},
		{"bad prefix", "participant 100 A 1\npolicy 100 out drop srcip 10.0.0.0/99"},
		{"unknown match field", "participant 100 A 1\npolicy 100 out drop color red"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := sdx.New()
			if _, err := loadConfig(ctrl, writeConfig(t, tc.conf)); err == nil {
				t.Fatalf("config %q should fail", tc.conf)
			}
		})
	}
	if _, err := loadConfig(sdx.New(), "/nonexistent/path.conf"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestParseTermMatches(t *testing.T) {
	term, err := parseTerm([]string{"fwd", "200", "dstport", "443", "srcip", "10.0.0.0/8", "proto", "6"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if term.Action.ToParticipant != 200 {
		t.Fatalf("target = %d", term.Action.ToParticipant)
	}
	if v, ok := term.Match.GetDstPort(); !ok || v != 443 {
		t.Fatal("dstport not parsed")
	}
	if v, ok := term.Match.GetSrcIP(); !ok || v != sdx.MustParsePrefix("10.0.0.0/8") {
		t.Fatal("srcip not parsed")
	}
	if v, ok := term.Match.GetProto(); !ok || v != 6 {
		t.Fatal("proto not parsed")
	}

	drop, err := parseTerm([]string{"drop", "dstip", "8.8.8.0/24"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !drop.Action.Drop {
		t.Fatal("drop flag not set")
	}
	if _, ok := drop.Match.GetDstIP(); !ok {
		t.Fatal("drop match not parsed")
	}

	if _, err := parseTerm(nil, false); err == nil {
		t.Fatal("empty term should fail")
	}
	if _, err := parseTerm([]string{"fwd"}, false); err == nil {
		t.Fatal("fwd without target should fail")
	}
	if _, err := parseTerm([]string{"port"}, true); err == nil {
		t.Fatal("port without id should fail")
	}
	if _, err := parseTerm([]string{"port", "zz"}, true); err == nil {
		t.Fatal("bad port id should fail")
	}
	if _, err := parseTerm([]string{"fwd", "zz"}, false); err == nil {
		t.Fatal("bad target should fail")
	}
	if _, err := parseTerm([]string{"drop", "srcport", "zz"}, false); err == nil {
		t.Fatal("bad srcport should fail")
	}
}
