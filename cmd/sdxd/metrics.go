package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"sdx"
	"sdx/internal/flow"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
)

// newMetricsMux serves the controller's observability surface:
//
//	/metrics       registry snapshot as JSON (?format=text for the dump)
//	/metrics/text  human-readable metric dump
//	/trace         retained trace events as JSON
//	/health        reconciler + prober health summary as JSON
//	/flows         flow-analytics snapshot (tracked flows + top-k) as JSON
//
// rec, prb and ana may be nil (no fabric, or the loops are disabled);
// /health then reports only the components that exist, and /flows
// returns 404 when flow analytics is off.
//
// /health is an orchestrator gate: it returns 200 only while every
// wired component is healthy, and 503 with the failing components
// listed when the prober reports unhealthy pairs or the reconciler is
// drifting or in escalation.
func newMetricsMux(ctrl *sdx.Controller, rec *reconcile.Reconciler, prb *probe.Prober, ana *flow.Analytics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", ctrl.Metrics())
	mux.HandleFunc("/metrics/text", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ctrl.Metrics().WriteText(w)
	})
	mux.Handle("/trace", ctrl.Tracer())
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		type reconcileHealth struct {
			Healthy bool              `json:"healthy"`
			Last    reconcile.Summary `json:"last"`
		}
		type probeHealth struct {
			Healthy bool               `json:"healthy"`
			Pairs   []probe.PairHealth `json:"pairs"`
		}
		out := struct {
			Healthy   bool             `json:"healthy"`
			Failing   []string         `json:"failing,omitempty"`
			Reconcile *reconcileHealth `json:"reconcile,omitempty"`
			Probe     *probeHealth     `json:"probe,omitempty"`
		}{Healthy: true}
		if rec != nil {
			out.Reconcile = &reconcileHealth{Healthy: rec.Healthy(), Last: rec.Last()}
			if !out.Reconcile.Healthy {
				out.Healthy = false
				out.Failing = append(out.Failing, "reconcile")
			}
			for _, ts := range out.Reconcile.Last.Targets {
				if ts.Escalated {
					out.Failing = append(out.Failing, "reconcile:"+ts.Name+":escalated")
				}
			}
		}
		if prb != nil {
			out.Probe = &probeHealth{Healthy: prb.Healthy(), Pairs: prb.Health()}
			if !out.Probe.Healthy {
				out.Healthy = false
				for _, ph := range out.Probe.Pairs {
					if !ph.Healthy {
						out.Failing = append(out.Failing, fmt.Sprintf("probe:%d->%d", ph.From, ph.To))
					}
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !out.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
		if ana == nil {
			http.Error(w, "flow analytics disabled (-flow-sample-rate 0)", http.StatusNotFound)
			return
		}
		out := struct {
			Flows []flow.FlowStat `json:"flows"`
			Top   []flow.TopEntry `json:"top"`
		}{Flows: ana.Snapshot(), Top: ana.Top()}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}
