package main

import (
	"net/http"

	"sdx"
)

// newMetricsMux serves the controller's observability surface:
//
//	/metrics       registry snapshot as JSON (?format=text for the dump)
//	/metrics/text  human-readable metric dump
//	/trace         retained trace events as JSON
func newMetricsMux(ctrl *sdx.Controller) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", ctrl.Metrics())
	mux.HandleFunc("/metrics/text", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ctrl.Metrics().WriteText(w)
	})
	mux.Handle("/trace", ctrl.Tracer())
	return mux
}
