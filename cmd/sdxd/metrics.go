package main

import (
	"encoding/json"
	"net/http"

	"sdx"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
)

// newMetricsMux serves the controller's observability surface:
//
//	/metrics       registry snapshot as JSON (?format=text for the dump)
//	/metrics/text  human-readable metric dump
//	/trace         retained trace events as JSON
//	/health        reconciler + prober health summary as JSON
//
// rec and prb may be nil (no fabric, or the loops are disabled); /health
// then reports only the components that exist.
func newMetricsMux(ctrl *sdx.Controller, rec *reconcile.Reconciler, prb *probe.Prober) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", ctrl.Metrics())
	mux.HandleFunc("/metrics/text", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ctrl.Metrics().WriteText(w)
	})
	mux.Handle("/trace", ctrl.Tracer())
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		type reconcileHealth struct {
			Healthy bool              `json:"healthy"`
			Last    reconcile.Summary `json:"last"`
		}
		type probeHealth struct {
			Healthy bool               `json:"healthy"`
			Pairs   []probe.PairHealth `json:"pairs"`
		}
		out := struct {
			Healthy   bool             `json:"healthy"`
			Reconcile *reconcileHealth `json:"reconcile,omitempty"`
			Probe     *probeHealth     `json:"probe,omitempty"`
		}{Healthy: true}
		if rec != nil {
			out.Reconcile = &reconcileHealth{Healthy: rec.Healthy(), Last: rec.Last()}
			out.Healthy = out.Healthy && out.Reconcile.Healthy
		}
		if prb != nil {
			out.Probe = &probeHealth{Healthy: prb.Healthy(), Pairs: prb.Health()}
			out.Healthy = out.Healthy && out.Probe.Healthy
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}
