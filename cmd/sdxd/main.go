// Command sdxd runs an SDX controller daemon: it loads an exchange
// configuration, listens for participant BGP sessions on a TCP endpoint
// (the route-server side of the paper's Figure 3), and periodically runs
// the background optimization pass that folds fast-path rules into the
// minimal tables (§4.3.2).
//
// The configuration is a small line-oriented file:
//
//	# participant <as> <name> <port-id> [port-id...]   ("-" for remote)
//	participant 100 A 1
//	participant 200 B 2 3
//	participant 400 tenant -
//
//	# communities <route-server-as>   (enable IXP community semantics)
//	communities 64512
//
//	# policy <as> in|out <term>
//	#   out terms: fwd <target-as> [dstport N] [srcip CIDR] [dstip CIDR]
//	#   in  terms: port <port-id> [srcip CIDR] [dstport N] ...
//	policy 100 out fwd 200 dstport 80
//	policy 200 in port 3 srcip 128.0.0.0/1
//
// Participants connect with any BGP-4 speaker (two-octet AS numbers) and
// receive VNH-rewritten advertisements, exactly like the in-process
// examples.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sdx"
	"sdx/internal/dataplane"
	"sdx/internal/flow"
	"sdx/internal/openflow"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:2179", "BGP listen address")
	localAS := flag.Uint("as", 64512, "route server AS number")
	configPath := flag.String("config", "", "exchange configuration file")
	fabric := flag.String("fabric", "", "optional sdx-switch address to program over the control channel")
	optimize := flag.Duration("optimize-interval", 5*time.Second, "background recompilation interval")
	metricsAddr := flag.String("metrics", "", "HTTP observability address (serves /metrics, /metrics/text, /trace, /health); empty disables")
	coalesce := flag.Bool("coalesce", true, "route received UPDATEs through the coalescing ingestion queue (per-(peer,prefix) latest-wins, bounded install latency)")
	reconcileInterval := flag.Duration("reconcile-interval", time.Second, "continuous reconciler period against the external fabric's installed table (0 disables; requires -fabric)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "dataplane liveness probe period across participant port pairs (0 disables; requires -fabric)")
	flowRate := flag.Int("flow-sample-rate", 1024, "sFlow-style 1-in-N packet sampling rate on the local dataplane (0 disables flow analytics)")
	flowTopK := flag.Int("flow-topk", 16, "heavy-hitter top-k summary size for flow analytics")
	flag.Parse()

	ctrl := sdx.New(sdx.WithLogger(log.Printf))
	var ana *flow.Analytics
	if *flowRate > 0 {
		// Sampled flow export: 1-in-N samples off the local switch's
		// forwarding path into the analytics service, each flow joined
		// against the route server's Loc-RIB best route. Served at /flows.
		sampler := flow.NewSampler(0, ctrl.Metrics())
		ctrl.Switch().Table().SetSampler(sampler, *flowRate)
		resolver := flow.NewRIBResolver(ctrl.RouteServer(), time.Second, ctrl.Metrics())
		ana = flow.NewAnalytics(flow.Config{SampleRate: *flowRate, TopK: *flowTopK},
			sampler.Records(), resolver, ctrl.Metrics())
		ana.SetLogger(log.Printf)
		ana.Start()
		log.Printf("flow analytics: sampling 1-in-%d, top-%d heavy hitters", *flowRate, *flowTopK)
	}
	var ports []sdx.PortID
	if *configPath != "" {
		var err error
		if ports, err = loadConfig(ctrl, *configPath); err != nil {
			log.Fatalf("config: %v", err)
		}
	}
	fabricCtx, fabricStop := context.WithCancel(context.Background())
	defer fabricStop()
	var rec *reconcile.Reconciler
	var prb *probe.Prober
	if *fabric != "" {
		// The control channel is kept alive by a redialer: whenever the
		// channel dies, it reconnects with backoff and resyncs the full
		// rule state (flush + band replay) through AddRuleMirror.
		var gen atomic.Uint64
		red := &openflow.Redialer{
			Dial: func(context.Context) (*openflow.Client, error) {
				return openflow.Dial(*fabric)
			},
			Logf: log.Printf,
		}
		red.OnUp = func(client *openflow.Client) {
			// Remote table misses: deliver liveness probes that reached
			// their destination port, answer ARP (VNH resolution), and
			// fall back to normal L2 delivery via PACKET_OUT.
			client.OnPacketIn = func(p sdx.Packet) {
				if to, ok := probe.Destination(p); ok && to == p.InPort {
					// The switch punted a probe delivered on its
					// destination port: the forwarding path works.
					prb.Deliver(p.InPort, p)
					return
				}
				// PACKET_OUT failures mean the control channel died; the
				// packet is dropped like any other table miss, and the
				// channel's Done() is the reconnect signal. A probe that
				// missed the tables rides the same normal-egress relay as
				// any other packet.
				if reply, ok := ctrl.HandleARP(p); ok {
					_ = client.PacketOut(p.InPort, reply)
					return
				}
				if egress, ok := ctrl.NormalEgress(p); ok {
					_ = client.PacketOut(egress, p)
				}
			}
			gen.Add(1)
			ctrl.AddRuleMirror(openflow.Mirror{C: client})
			log.Printf("fabric channel up, rule state resynced")
		}
		red.OnDown = func(client *openflow.Client, err error) {
			gen.Add(1)
			ctrl.RemoveRuleMirror(openflow.Mirror{C: client})
			log.Printf("fabric channel down: %v", err)
		}

		// Continuous reconciler: read the installed table back over the
		// control channel (DumpFlows), diff against the intended table,
		// repair minimally, escalate to flush-and-replay on persistent
		// drift. The generation counter fences repairs across reconnects.
		rec = reconcile.New(reconcile.Config{
			Interval: *reconcileInterval,
			Registry: ctrl.Metrics(),
			Logf:     log.Printf,
		}, reconcile.Target{
			Name:     "fabric",
			Intended: func() []*dataplane.FlowEntry { return ctrl.Switch().Table().Entries() },
			Installed: func() ([]*dataplane.FlowEntry, bool) {
				c := red.Client()
				if c == nil {
					return nil, false
				}
				groups, err := c.DumpFlows()
				if err != nil {
					return nil, false
				}
				return openflow.EntriesFromGroups(groups), true
			},
			Sink: func() reconcile.Sink {
				c := red.Client()
				if c == nil {
					return nil
				}
				return openflow.Mirror{C: c}
			},
			Generation: gen.Load,
			Escalate: func() {
				if c := red.Client(); c != nil {
					ctrl.Resync(openflow.Mirror{C: c})
				}
			},
		})

		// Dataplane liveness prober: inject probes into the remote
		// pipeline between every ordered pair of configured participant
		// ports; the switch punts delivered probes back as PacketIns.
		var pairs []probe.Pair
		for _, from := range ports {
			for _, to := range ports {
				if from != to {
					pairs = append(pairs, probe.Pair{From: from, To: to})
				}
			}
		}
		prb = probe.New(probe.Config{
			Interval: *probeInterval,
			Registry: ctrl.Metrics(),
			Logf:     log.Printf,
		}, func(port sdx.PortID, p sdx.Packet) bool {
			c := red.Client()
			if c == nil {
				return false
			}
			return c.Inject(port, p) == nil
		}, pairs...)

		go func() { _ = red.Run(fabricCtx) }()
		if *reconcileInterval > 0 {
			rec.Start()
			log.Printf("reconciler loop at %v", *reconcileInterval)
		}
		if *probeInterval > 0 && len(pairs) > 0 {
			prb.Start()
			log.Printf("liveness probing %d port pairs at %v", len(pairs), *probeInterval)
		}
		stats := func(f func(openflow.ChannelStats) uint64) func() int64 {
			return func() int64 {
				c := red.Client()
				if c == nil {
					return 0
				}
				return int64(f(c.ChannelStats()))
			}
		}
		reg := ctrl.Metrics()
		reg.RegisterGaugeFunc("openflow.flow_mods",
			stats(func(s openflow.ChannelStats) uint64 { return s.FlowMods }))
		reg.RegisterGaugeFunc("openflow.packet_outs",
			stats(func(s openflow.ChannelStats) uint64 { return s.PacketOuts }))
		reg.RegisterGaugeFunc("openflow.packet_ins",
			stats(func(s openflow.ChannelStats) uint64 { return s.PacketIns }))
		reg.RegisterGaugeFunc("openflow.echoes",
			stats(func(s openflow.ChannelStats) uint64 { return s.Echoes }))
		log.Printf("programming external fabric at %s", *fabric)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		go func() {
			// Serve exits when the listener closes at process shutdown.
			_ = http.Serve(ln, newMetricsMux(ctrl, rec, prb, ana))
		}()
		log.Printf("metrics at http://%s/metrics", ln.Addr())
	}
	rep := ctrl.Recompile()
	log.Printf("initial compilation: %d groups, %d rules in %v", rep.Groups, rep.Rules, rep.Elapsed)

	srv, err := sdx.ListenBGP(ctrl, *listen, uint32(*localAS))
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("route server listening on %s (AS%d)", srv.Addr(), *localAS)

	var queue *sdx.UpdateQueue
	if *coalesce {
		queue = sdx.NewUpdateQueue(ctrl, sdx.QueueConfig{})
		srv.UseIngestQueue(queue)
		log.Printf("coalescing ingestion queue enabled")
	}

	// Background optimizer: recompile between update bursts (§4.3.2).
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*optimize)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if ctrl.Dirty() {
				rep := ctrl.Recompile()
				log.Printf("background optimization: %d groups, %d rules in %v",
					rep.Groups, rep.Rules, rep.Elapsed)
			}
		case <-stop:
			log.Printf("shutting down")
			if ana != nil {
				ana.Stop()
			}
			if prb != nil {
				prb.Stop()
			}
			if rec != nil {
				rec.Stop()
			}
			srv.Close()
			if queue != nil {
				queue.Stop()
				st := queue.Stats()
				log.Printf("ingestion queue: %d enqueued, %d coalesced, %d applied over %d drains",
					st.Enqueued, st.Coalesced, st.Applied, st.Drains)
			}
			fabricStop()
			return
		}
	}
}

// loadConfig installs the configuration into ctrl and returns the
// physical participant ports it declared, in file order — the port set
// the liveness prober pairs up.
func loadConfig(ctrl *sdx.Controller, path string) ([]sdx.PortID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ports []sdx.PortID

	type policyLine struct {
		as      uint32
		inbound bool
		term    sdx.Term
	}
	var policies []policyLine

	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) ([]sdx.PortID, error) {
			return nil, fmt.Errorf("%s:%d: %s", path, lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "communities":
			if len(fields) != 2 {
				return fail("communities needs <route-server-as>")
			}
			as, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil || as == 0 {
				return fail("bad route-server AS %q", fields[1])
			}
			ctrl.EnableCommunities(uint32(as))
		case "participant":
			if len(fields) < 4 {
				return fail("participant needs <as> <name> <ports...>")
			}
			as, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return fail("bad AS %q", fields[1])
			}
			cfg := sdx.ParticipantConfig{AS: uint32(as), Name: fields[2]}
			if fields[3] != "-" {
				for _, pf := range fields[3:] {
					id, err := strconv.ParseUint(pf, 10, 32)
					if err != nil {
						return fail("bad port %q", pf)
					}
					cfg.Ports = append(cfg.Ports, sdx.PhysicalPort{ID: sdx.PortID(id)})
					ports = append(ports, sdx.PortID(id))
				}
			}
			if _, err := ctrl.AddParticipant(cfg); err != nil {
				return fail("%v", err)
			}
		case "policy":
			if len(fields) < 4 {
				return fail("policy needs <as> in|out <term>")
			}
			as, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return fail("bad AS %q", fields[1])
			}
			inbound := fields[2] == "in"
			term, err := parseTerm(fields[3:], inbound)
			if err != nil {
				return fail("%v", err)
			}
			policies = append(policies, policyLine{uint32(as), inbound, term})
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Group policy lines per participant and install.
	byAS := map[uint32]*struct{ in, out []sdx.Term }{}
	for _, p := range policies {
		e := byAS[p.as]
		if e == nil {
			e = &struct{ in, out []sdx.Term }{}
			byAS[p.as] = e
		}
		if p.inbound {
			e.in = append(e.in, p.term)
		} else {
			e.out = append(e.out, p.term)
		}
	}
	for as, e := range byAS {
		if err := ctrl.SetPolicy(as, e.in, e.out); err != nil {
			return nil, fmt.Errorf("%s: policy for AS%d: %w", path, as, err)
		}
	}
	return ports, nil
}

func parseTerm(fields []string, inbound bool) (sdx.Term, error) {
	var term sdx.Term
	if len(fields) == 0 {
		return term, fmt.Errorf("empty term")
	}
	var rest []string
	switch fields[0] {
	case "fwd":
		if inbound {
			return term, fmt.Errorf("fwd is an outbound action")
		}
		if len(fields) < 2 {
			return term, fmt.Errorf("fwd needs a target AS")
		}
		as, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return term, fmt.Errorf("bad target AS %q", fields[1])
		}
		term.Action.ToParticipant = uint32(as)
		rest = fields[2:]
	case "port":
		if !inbound {
			return term, fmt.Errorf("port is an inbound action")
		}
		if len(fields) < 2 {
			return term, fmt.Errorf("port needs a port id")
		}
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return term, fmt.Errorf("bad port %q", fields[1])
		}
		term.Action.ToPort = sdx.PortID(id)
		rest = fields[2:]
	case "drop":
		term.Action.Drop = true
		rest = fields[1:]
	default:
		return term, fmt.Errorf("unknown action %q", fields[0])
	}

	m := sdx.MatchAll
	for len(rest) > 0 {
		if len(rest) < 2 {
			return term, fmt.Errorf("dangling match field %q", rest[0])
		}
		key, val := rest[0], rest[1]
		switch key {
		case "dstport":
			n, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return term, fmt.Errorf("bad dstport %q", val)
			}
			m = m.DstPort(uint16(n))
		case "srcport":
			n, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return term, fmt.Errorf("bad srcport %q", val)
			}
			m = m.SrcPort(uint16(n))
		case "srcip":
			p, err := sdx.ParsePrefix(val)
			if err != nil {
				return term, err
			}
			m = m.SrcIP(p)
		case "dstip":
			p, err := sdx.ParsePrefix(val)
			if err != nil {
				return term, err
			}
			m = m.DstIP(p)
		case "proto":
			n, err := strconv.ParseUint(val, 10, 8)
			if err != nil {
				return term, fmt.Errorf("bad proto %q", val)
			}
			m = m.Proto(uint8(n))
		default:
			return term, fmt.Errorf("unknown match field %q", key)
		}
		rest = rest[2:]
	}
	term.Match = m
	return term, nil
}
