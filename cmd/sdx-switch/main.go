// Command sdx-switch runs a standalone SDX fabric switch that accepts a
// controller connection over the OpenFlow-style control channel — the
// separated data plane of the paper's deployment (the role Open vSwitch
// played in Figure 3). Pair it with `sdxd -fabric <addr>`.
//
// Delivered packets are logged; the switch is a software fabric for
// experiments, not a NIC-attached forwarder.
package main

import (
	"flag"
	"log"
	"net"
	"strconv"
	"strings"

	"sdx/internal/dataplane"
	"sdx/internal/openflow"
	"sdx/internal/pkt"
	"sdx/internal/probe"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:6633", "controller listen address")
	ports := flag.String("ports", "1,2,3,4", "comma-separated fabric port IDs")
	quiet := flag.Bool("quiet", false, "do not log delivered packets")
	flag.Parse()

	sw := dataplane.NewSwitch("sdx-fabric")
	// The agent exists before the ports so delivery handlers can punt
	// liveness probes back to the controller as PacketIns.
	agent := openflow.NewAgent(sw)
	for _, f := range strings.Split(*ports, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
		if err != nil {
			log.Fatalf("bad port %q: %v", f, err)
		}
		pid := pkt.PortID(id)
		deliver := func(p pkt.Packet) {
			if p.EthType == probe.EthType {
				// A delivered liveness probe: hand it back to the
				// controller's prober with the delivery port stamped.
				p.InPort = pid
				agent.Punt(p)
				return
			}
			if !*quiet {
				log.Printf("port %d <- %v", pid, p)
			}
		}
		if err := sw.AddPort(pid, f, deliver); err != nil {
			log.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fabric switch with ports %s awaiting controller on %s", *ports, ln.Addr())
	if err := agent.ListenAndServe(ln); err != nil {
		log.Fatal(err)
	}
}
