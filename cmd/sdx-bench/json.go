package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sdx/internal/experiments"
)

// benchReport is the machine-readable benchmark baseline written by
// `sdx-bench -json` (schema sdx-bench/compile/v1). All durations are
// integer nanoseconds in fields suffixed _ns. The speedup series
// compares the serial reference compiler against the parallel pipeline
// on the same exchanges; `identical` asserts byte-equal output. Note
// `host.cpus`: speedups near 1.0 on single-core runners are expected —
// compare like with like across baselines.
type benchReport struct {
	Schema      string        `json:"schema"`
	GeneratedAt time.Time     `json:"generatedAt"`
	Seed        int64         `json:"seed"`
	Full        bool          `json:"full"`
	Host        hostInfo      `json:"host"`
	Fig6        []fig6JSON    `json:"fig6"`
	Fig78       []fig78JSON   `json:"fig78"`
	Fig9        []fig9JSON    `json:"fig9"`
	Fig10       []fig10JSON   `json:"fig10"`
	Speedup     []speedupJSON `json:"speedup"`
}

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"goversion"`
}

type fig6JSON struct {
	Participants int `json:"participants"`
	Prefixes     int `json:"prefixes"`
	Groups       int `json:"groups"`
}

type fig78JSON struct {
	Participants int   `json:"participants"`
	Groups       int   `json:"groups"`
	Rules        int   `json:"rules"`
	CompileNS    int64 `json:"compile_ns"`
	CacheHits    int   `json:"cacheHits"`
}

type fig9JSON struct {
	Participants    int `json:"participants"`
	BurstSize       int `json:"burstSize"`
	AdditionalRules int `json:"additionalRules"`
}

type fig10JSON struct {
	Participants int   `json:"participants"`
	P10NS        int64 `json:"p10_ns"`
	P50NS        int64 `json:"p50_ns"`
	P90NS        int64 `json:"p90_ns"`
	P99NS        int64 `json:"p99_ns"`
	MaxNS        int64 `json:"max_ns"`
}

type speedupJSON struct {
	Participants int     `json:"participants"`
	Groups       int     `json:"groups"`
	Workers      int     `json:"workers"`
	SerialNS     int64   `json:"serial_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// writeJSONReport runs the compile-oriented experiments (Fig 6–10 plus
// the serial-vs-parallel speedup series) and writes the baseline file.
func writeJSONReport(path string, seed int64, full bool) error {
	report := benchReport{
		Schema:      "sdx-bench/compile/v1",
		GeneratedAt: time.Now().UTC(),
		Seed:        seed,
		Full:        full,
		Host: hostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	participants := []int{100, 200, 300}
	fig6Steps, fig6Total := []int{1000, 2500, 5000, 7500, 10000}, 10000
	groupSteps := []int{200, 400, 600}
	burstSizes := []int{0, 20, 40, 60, 80, 100}
	fig9Groups, fig10Updates, fig10Groups := 300, 300, 300
	speedupGroups := 600
	if full {
		fig6Steps, fig6Total = []int{1000, 5000, 10000, 15000, 20000, 25000}, 25000
		groupSteps = []int{200, 400, 600, 800, 1000}
		fig9Groups, fig10Updates, fig10Groups = 1000, 1000, 1000
		speedupGroups = 1000
	}

	for _, p := range experiments.Fig6(participants, fig6Steps, fig6Total, seed) {
		report.Fig6 = append(report.Fig6, fig6JSON(p))
	}

	fig78, err := experiments.Fig78(participants, groupSteps, seed)
	if err != nil {
		return err
	}
	for _, p := range fig78 {
		report.Fig78 = append(report.Fig78, fig78JSON{
			Participants: p.Participants,
			Groups:       p.GroupsActual,
			Rules:        p.Rules,
			CompileNS:    p.CompileTime.Nanoseconds(),
			CacheHits:    p.CacheHits,
		})
	}

	fig9, err := experiments.Fig9(participants, burstSizes, fig9Groups, seed)
	if err != nil {
		return err
	}
	for _, p := range fig9 {
		report.Fig9 = append(report.Fig9, fig9JSON(p))
	}

	fig10, err := experiments.Fig10(participants, fig10Updates, fig10Groups, seed)
	if err != nil {
		return err
	}
	for _, r := range fig10 {
		report.Fig10 = append(report.Fig10, fig10JSON{
			Participants: r.Participants,
			P10NS:        r.Percentile(0.10).Nanoseconds(),
			P50NS:        r.Percentile(0.50).Nanoseconds(),
			P90NS:        r.Percentile(0.90).Nanoseconds(),
			P99NS:        r.Percentile(0.99).Nanoseconds(),
			MaxNS:        r.Percentile(1.0).Nanoseconds(),
		})
	}

	speedup, err := experiments.CompileSpeedup(participants, speedupGroups, seed)
	if err != nil {
		return err
	}
	for _, p := range speedup {
		if !p.Identical {
			return fmt.Errorf("speedup: parallel output diverged from serial at %d participants", p.Participants)
		}
		report.Speedup = append(report.Speedup, speedupJSON{
			Participants: p.Participants,
			Groups:       p.Groups,
			Workers:      p.Workers,
			SerialNS:     p.Serial.Nanoseconds(),
			ParallelNS:   p.Parallel.Nanoseconds(),
			Speedup:      p.Speedup,
			Identical:    p.Identical,
		})
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d cpus, %d workers)\n",
		path, len(buf), report.Host.CPUs, report.Speedup[0].Workers)
	for _, s := range report.Speedup {
		fmt.Printf("  %d participants: serial %s, parallel %s, speedup %.2fx\n",
			s.Participants,
			time.Duration(s.SerialNS).Round(time.Millisecond),
			time.Duration(s.ParallelNS).Round(time.Millisecond),
			s.Speedup)
	}
	return nil
}
