// Command sdx-bench regenerates every table and figure of the paper's
// evaluation (SIGCOMM'14 §5.2 and §6) as text rows/series, on synthesized
// workloads shaped like the published datasets.
//
// Usage:
//
//	sdx-bench -exp all            # everything, quick sizes
//	sdx-bench -exp fig8 -full     # one experiment at paper scale
//	sdx-bench -exp table1 -seed 7
//
// Absolute numbers differ from the paper (this is a Go reimplementation
// measured on a software switch, not a Python prototype on a testbed);
// the shapes — who wins, growth orders, crossovers — are the
// reproduction target. See EXPERIMENTS.md for the side-by-side reading.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sdx/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig5a|fig5b|fig6|fig7|fig8|fig9|fig10|ablation|all")
	seed := flag.Int64("seed", 1, "workload seed")
	full := flag.Bool("full", false, "paper-scale parameters (slower)")
	jsonOut := flag.Bool("json", false, "write the machine-readable benchmark baseline instead of text tables")
	dataplaneOut := flag.Bool("dataplane", false, "benchmark the dataplane fast path (compiled engine + megaflow cache vs naive scan) and write its baseline")
	scaleOut := flag.Bool("scale", false, "run the full-table scale benchmark (serial vs coalesced ingestion) and write its baseline")
	flowOut := flag.Bool("flow", false, "benchmark the flow-analytics pipeline (sampler overhead, non-sampled allocs, RIB join latency) and write its baseline")
	scaleCase := flag.String("scale-case", "", "with -scale: run only the named case (ci, participants1000)")
	against := flag.String("against", "", "with -scale: compare the fresh report against this committed baseline and fail on >20% install-p95 regression")
	outPath := flag.String("o", "", "output path (default BENCH_compile.json for -json, BENCH_dataplane.json for -dataplane, BENCH_scale.json for -scale)")
	flag.Parse()

	if *scaleOut {
		path := *outPath
		if path == "" {
			path = "BENCH_scale.json"
		}
		if err := writeScaleReport(path, *scaleCase, *seed); err != nil {
			log.Fatalf("scale baseline: %v", err)
		}
		if *against != "" {
			if err := checkScaleRegression(path, *against); err != nil {
				log.Fatalf("scale regression gate: %v", err)
			}
		}
		return
	}
	if *flowOut {
		path := *outPath
		if path == "" {
			path = "BENCH_flow.json"
		}
		if err := writeFlowReport(path, *seed); err != nil {
			log.Fatalf("flow baseline: %v", err)
		}
		return
	}
	if *dataplaneOut {
		path := *outPath
		if path == "" {
			path = "BENCH_dataplane.json"
		}
		if err := writeDataplaneReport(path, *seed); err != nil {
			log.Fatalf("dataplane baseline: %v", err)
		}
		return
	}
	if *jsonOut {
		path := *outPath
		if path == "" {
			path = "BENCH_compile.json"
		}
		if err := writeJSONReport(path, *seed, *full); err != nil {
			log.Fatalf("bench baseline: %v", err)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error { return table1(*seed, *full) })
	run("fig5a", func() error { return fig5a(*full) })
	run("fig5b", func() error { return fig5b(*full) })
	run("fig6", func() error { return fig6(*seed, *full) })
	run("fig7", func() error { return fig78(*seed, *full, false) })
	run("fig8", func() error { return fig78(*seed, *full, true) })
	run("fig9", func() error { return fig9(*seed, *full) })
	run("fig10", func() error { return fig10(*seed, *full) })
	run("ablation", func() error { return ablation(*seed, *full) })

	if *exp != "all" {
		switch *exp {
		case "table1", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}

func table1(seed int64, full bool) error {
	scale := 100
	if full {
		scale = 1
	}
	rows := experiments.Table1(scale, seed)
	fmt.Printf("Table 1: IXP datasets (synthesized at 1/%d scale; paper values in parens)\n", scale)
	fmt.Printf("%-8s %8s %10s %12s %20s %10s %12s\n",
		"ixp", "peers", "prefixes", "updates", "%prefixes updated", "burstP75", "medianGap")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %10d %12d %9.2f%% (%5.2f%%) %10d %12s\n",
			r.Name, r.Peers, r.Prefixes, r.Updates,
			r.UpdatedFraction*100, r.PaperFraction*100, r.BurstP75, r.MedianGap.Round(time.Second))
	}
	return nil
}

func fig5a(full bool) error {
	steps, policyAt, withdrawAt := 300, 100, 200
	if full {
		steps, policyAt, withdrawAt = 1800, 565, 1253
	}
	s, err := experiments.Fig5a(steps, policyAt, withdrawAt)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 5a: application-specific peering (policy@%ds, withdrawal@%ds)\n", policyAt, withdrawAt)
	printSeries(s, steps/20)
	return s.CheckFig5a(policyAt, withdrawAt)
}

func fig5b(full bool) error {
	steps, policyAt := 200, 80
	if full {
		steps, policyAt = 600, 246
	}
	s, err := experiments.Fig5b(steps, policyAt)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 5b: wide-area load balance (policy@%ds)\n", policyAt)
	printSeries(s, steps/20)
	return s.CheckFig5b(policyAt)
}

func printSeries(s *experiments.Fig5Series, stride int) {
	if stride < 1 {
		stride = 1
	}
	fmt.Printf("%6s", "t(s)")
	for _, n := range s.Names {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	first := s.Series[s.Names[0]]
	for t := 0; t < len(first); t += stride {
		fmt.Printf("%6d", t)
		for _, n := range s.Names {
			fmt.Printf(" %9.2f Mb", s.Series[n][t])
		}
		if ev, ok := s.Events[t]; ok {
			fmt.Printf("   <- %s", ev)
		}
		fmt.Println()
	}
}

func fig6(seed int64, full bool) error {
	participants := []int{100, 200, 300}
	steps := []int{1000, 2500, 5000, 7500, 10000}
	total := 10000
	if full {
		steps = []int{1000, 5000, 10000, 15000, 20000, 25000}
		total = 25000
	}
	pts := experiments.Fig6(participants, steps, total, seed)
	fmt.Println("Figure 6: prefix groups vs prefixes (expect sub-linear growth)")
	fmt.Printf("%14s %10s %10s\n", "participants", "prefixes", "groups")
	for _, p := range pts {
		fmt.Printf("%14d %10d %10d\n", p.Participants, p.Prefixes, p.Groups)
	}
	return nil
}

func fig78(seed int64, full, timing bool) error {
	participants := []int{100, 200, 300}
	groups := []int{200, 400, 600}
	if full {
		groups = []int{200, 400, 600, 800, 1000}
	}
	pts, err := experiments.Fig78(participants, groups, seed)
	if err != nil {
		return err
	}
	if timing {
		fmt.Println("Figure 8: initial compilation time vs prefix groups (expect superlinear)")
		fmt.Printf("%14s %10s %14s %10s\n", "participants", "groups", "compile", "cacheHits")
		for _, p := range pts {
			fmt.Printf("%14d %10d %14s %10d\n",
				p.Participants, p.GroupsActual, p.CompileTime.Round(time.Millisecond), p.CacheHits)
		}
		return nil
	}
	fmt.Println("Figure 7: forwarding rules vs prefix groups (expect linear growth,")
	fmt.Println("slope increasing with participants)")
	fmt.Printf("%14s %10s %10s\n", "participants", "groups", "rules")
	for _, p := range pts {
		fmt.Printf("%14d %10d %10d\n", p.Participants, p.GroupsActual, p.Rules)
	}
	return nil
}

func fig9(seed int64, full bool) error {
	participants := []int{100, 200, 300}
	bursts := []int{0, 20, 40, 60, 80, 100}
	groups := 300
	if full {
		groups = 1000
	}
	pts, err := experiments.Fig9(participants, bursts, groups, seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: additional fast-path rules per BGP update burst (worst")
	fmt.Println("case: every update forces a fresh VNH; expect linear in burst size)")
	fmt.Printf("%14s %10s %18s\n", "participants", "burst", "additional rules")
	for _, p := range pts {
		fmt.Printf("%14d %10d %18d\n", p.Participants, p.BurstSize, p.AdditionalRules)
	}
	return nil
}

func fig10(seed int64, full bool) error {
	participants := []int{100, 200, 300}
	updates, groups := 300, 300
	if full {
		updates, groups = 1000, 1000
	}
	res, err := experiments.Fig10(participants, updates, groups, seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 10: time to process a single BGP update (fast path CDF;")
	fmt.Println("paper reports <100ms for most updates on the Python prototype)")
	fmt.Printf("%14s %10s %10s %10s %10s %10s\n", "participants", "P10", "P50", "P90", "P99", "max")
	for _, r := range res {
		fmt.Printf("%14d %10s %10s %10s %10s %10s\n", r.Participants,
			experiments.FormatDuration(r.Percentile(0.10)),
			experiments.FormatDuration(r.Percentile(0.50)),
			experiments.FormatDuration(r.Percentile(0.90)),
			experiments.FormatDuration(r.Percentile(0.99)),
			experiments.FormatDuration(r.Percentile(1.0)))
	}
	return nil
}

func ablation(seed int64, full bool) error {
	participants, groups := 60, 150
	if full {
		participants, groups = 100, 300
	}
	rows, err := experiments.Ablation(participants, groups, seed)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation: pipeline variants on one exchange (%d participants, %d groups)\n", participants, groups)
	fmt.Printf("%-10s %10s %10s %14s %10s\n", "mode", "rules", "groups", "compile", "cacheHits")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %10d %14s %10d\n",
			r.Mode, r.Rules, r.Groups, r.CompileTime.Round(time.Millisecond), r.CacheHits)
	}
	fmt.Println("Expected: no-vnh explodes the rule count (the §4.2 motivation);")
	fmt.Println("no-cache and no-concat keep the rules but raise compile cost.")
	return nil
}
