package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"math/rand"

	"sdx/internal/bgp"
	"sdx/internal/dataplane"
	"sdx/internal/flow"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/rs"
	"sdx/internal/trafficgen"
)

// flowReport is the machine-readable flow-analytics baseline written by
// `sdx-bench -flow` (schema sdx-bench/flow/v1). It gates the sampler's
// cost contract: attaching a 1-in-N sampler to the batched fast path may
// cost at most 5% over the detached baseline and must not allocate on
// the non-sampled path, and it records the BGP-correlation join latency
// against a populated Loc-RIB. All durations are integer nanoseconds in
// fields suffixed _ns.
type flowReport struct {
	Schema      string    `json:"schema"`
	GeneratedAt time.Time `json:"generatedAt"`
	Seed        int64     `json:"seed"`
	Host        hostInfo  `json:"host"`
	Rules       int       `json:"rules"`
	Batch       int       `json:"batch"`
	SampleRate  int       `json:"sampleRate"`

	BaseNsPerPkt    int64   `json:"baseNsPerPkt"`    // sampler detached
	SampledNsPerPkt int64   `json:"sampledNsPerPkt"` // sampler attached at SampleRate
	OverheadPct     float64 `json:"overheadPct"`
	AllocsPerPkt    int64   `json:"allocsPerPkt"` // non-sampled path, sampler attached

	JoinPrefixes int   `json:"joinPrefixes"`
	JoinP50NS    int64 `json:"joinP50_ns"`
	JoinP99NS    int64 `json:"joinP99_ns"`

	Checks []dataplaneCheck `json:"checks"`
}

const (
	flowRules      = 7000 // the paper's §6 working point, as in -dataplane
	flowSampleRate = 1024
)

// measureFlowOverhead times the warm batched fast path with the sampler
// detached and attached, interleaved round-robin so clock drift and
// cache effects hit both sides equally, and reports the median ns/pkt
// for each side.
func measureFlowOverhead(seed int64) (base, sampled int64, err error) {
	es := dpRules(flowRules, seed)
	tbl := dataplane.NewFlowTable()
	tbl.SetCompiled(true)
	tbl.AddBatch(es)
	tbl.Precompile()

	gen := trafficgen.NewPacketGen(seed+1, trafficgen.PoolsFromEntries(es)).
		SetHitBias(0.9).SetWorkingSet(2048)
	stream := make([]pkt.Packet, dpBatch)
	out := make([]pkt.Packet, 0, 4*dpBatch)
	for i := 0; i < 2048/dpBatch*2; i++ {
		gen.Fill(stream)
		out = tbl.ProcessBatch(stream, out[:0], nil)
	}

	smp := flow.NewSampler(1<<15, nil)
	drainDone := make(chan struct{})
	defer close(drainDone)
	go func() { // drain exports so the channel never backs up
		for {
			select {
			case <-smp.Records():
			case <-drainDone:
				return
			}
		}
	}()

	const rounds = 300
	const batchesPerSide = 4
	offSamples := make([]float64, 0, rounds*batchesPerSide)
	onSamples := make([]float64, 0, rounds*batchesPerSide)
	side := func(samples *[]float64) {
		for b := 0; b < batchesPerSide; b++ {
			gen.Fill(stream)
			t0 := time.Now()
			out = tbl.ProcessBatch(stream, out[:0], nil)
			*samples = append(*samples, float64(time.Since(t0).Nanoseconds())/float64(len(stream)))
		}
	}
	for r := 0; r < rounds; r++ {
		tbl.SetSampler(nil, 0)
		side(&offSamples)
		tbl.SetSampler(smp, flowSampleRate)
		side(&onSamples)
	}
	median := func(s []float64) int64 {
		sort.Float64s(s)
		return int64(s[len(s)/2])
	}
	return median(offSamples), median(onSamples), nil
}

// measureFlowAllocs proves the non-sampled path allocation-free with a
// sampler attached: at a stride far beyond the packet count, every
// packet takes the counter-compare-only branch.
func measureFlowAllocs(seed int64) int64 {
	es := dpRules(flowRules, seed)
	tbl := dataplane.NewFlowTable()
	tbl.SetCompiled(true)
	tbl.AddBatch(es)
	tbl.Precompile()
	smp := flow.NewSampler(64, nil)
	tbl.SetSampler(smp, 1<<30)

	gen := trafficgen.NewPacketGen(seed+2, trafficgen.PoolsFromEntries(es)).
		SetHitBias(0.9).SetWorkingSet(2048)
	stream := make([]pkt.Packet, dpBatch)
	out := make([]pkt.Packet, 0, 4*dpBatch)
	for i := 0; i < 2048/dpBatch*2; i++ {
		gen.Fill(stream)
		out = tbl.ProcessBatch(stream, out[:0], nil)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = tbl.ProcessBatch(stream, out[:0], nil)
		}
	})
	return res.AllocsPerOp() / int64(len(stream))
}

// measureJoinLatency populates a route server with full-feed-shaped
// announcements and times RIBResolver.Resolve over a mixed hit/miss
// address stream against the warm snapshot.
func measureJoinLatency(seed int64) (prefixes int, p50, p99 int64, hits int, err error) {
	server := rs.New()
	const peers = 8
	for i := 0; i < peers; i++ {
		if err := server.AddParticipant(rs.ParticipantConfig{AS: 100 + uint32(i)}); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	r := rand.New(rand.NewSource(seed + 3))
	const nPrefixes = 5000
	updates := make([]rs.PeerUpdate, 0, nPrefixes)
	announced := make([]iputil.Prefix, 0, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		as := 100 + uint32(r.Intn(peers))
		pfx := iputil.NewPrefix(iputil.Addr(r.Uint32()), 24)
		announced = append(announced, pfx)
		updates = append(updates, rs.PeerUpdate{From: as, Update: &bgp.Update{
			NLRI:  []iputil.Prefix{pfx},
			Attrs: &bgp.PathAttrs{ASPath: []uint32{as, 900}, NextHop: iputil.Addr(as)},
		}})
	}
	server.Apply(updates)

	res := flow.NewRIBResolver(server, time.Hour, nil)
	res.Resolve(announced[0].Addr()) // build the snapshot outside the timed loop

	const lookups = 50000
	samples := make([]float64, 0, lookups)
	for i := 0; i < lookups; i++ {
		var addr iputil.Addr
		if i%4 != 0 { // 3/4 hits inside announced space, 1/4 random
			addr = announced[r.Intn(len(announced))].Addr() + iputil.Addr(r.Intn(200))
		} else {
			addr = iputil.Addr(r.Uint32())
		}
		t0 := time.Now()
		_, ok := res.Resolve(addr)
		samples = append(samples, float64(time.Since(t0).Nanoseconds()))
		if ok {
			hits++
		}
	}
	sort.Float64s(samples)
	return nPrefixes, int64(samples[len(samples)/2]), int64(samples[len(samples)*99/100]), hits, nil
}

// writeFlowReport runs the three flow measurements, enforces the cost
// contract (<=5% sampler overhead, zero allocations on the non-sampled
// path, a working RIB join), and writes the baseline file.
func writeFlowReport(path string, seed int64) error {
	report := flowReport{
		Schema:      "sdx-bench/flow/v1",
		GeneratedAt: time.Now().UTC(),
		Seed:        seed,
		Rules:       flowRules,
		Batch:       dpBatch,
		SampleRate:  flowSampleRate,
		Host: hostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	base, sampled, err := measureFlowOverhead(seed)
	if err != nil {
		return err
	}
	report.BaseNsPerPkt = base
	report.SampledNsPerPkt = sampled
	if base > 0 {
		report.OverheadPct = 100 * float64(sampled-base) / float64(base)
	}
	fmt.Printf("  sampler overhead: base %dns/pkt, 1-in-%d sampled %dns/pkt (%+.2f%%)\n",
		base, flowSampleRate, sampled, report.OverheadPct)
	overheadOK := report.OverheadPct <= 5
	report.Checks = append(report.Checks, dataplaneCheck{
		Name: "sampler-overhead",
		OK:   overheadOK,
		Note: fmt.Sprintf("%+.2f%% vs detached baseline (ceiling 5%%)", report.OverheadPct),
	})

	report.AllocsPerPkt = measureFlowAllocs(seed)
	fmt.Printf("  non-sampled path: %d allocs/pkt with sampler attached\n", report.AllocsPerPkt)
	allocsOK := report.AllocsPerPkt == 0
	report.Checks = append(report.Checks, dataplaneCheck{
		Name: "zero-alloc-nonsampled",
		OK:   allocsOK,
		Note: fmt.Sprintf("%d allocs/pkt on the non-sampled batched path", report.AllocsPerPkt),
	})

	prefixes, p50, p99, hits, err := measureJoinLatency(seed)
	if err != nil {
		return err
	}
	report.JoinPrefixes = prefixes
	report.JoinP50NS = p50
	report.JoinP99NS = p99
	fmt.Printf("  rib join: %d prefixes, p50 %dns p99 %dns, %d hits\n", prefixes, p50, p99, hits)
	joinOK := hits > 0 && p50 > 0
	report.Checks = append(report.Checks, dataplaneCheck{
		Name: "rib-join",
		OK:   joinOK,
		Note: fmt.Sprintf("%d/50000 lookups attributed over %d prefixes", hits, prefixes),
	})

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(buf))

	if !overheadOK {
		return fmt.Errorf("flow: sampler overhead %.2f%% exceeds the 5%% ceiling", report.OverheadPct)
	}
	if !allocsOK {
		return fmt.Errorf("flow: non-sampled path allocates %d/pkt, want 0", report.AllocsPerPkt)
	}
	if !joinOK {
		return fmt.Errorf("flow: rib join produced no attributions")
	}
	return nil
}
