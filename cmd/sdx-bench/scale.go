package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sdx/internal/experiments"
)

// scaleReport is the machine-readable scale baseline written by
// `sdx-bench -scale` (schema sdx-bench/scale/v1). Each case drives the
// same sustained hot-prefix churn through the serial per-update path and
// the coalescing batch path on identically built exchanges; `identical`
// asserts the two end states recompiled byte-equal. Durations are
// integer nanoseconds in _ns fields. As with the compile baseline,
// absolute rates are host-dependent (see host.cpus) — the regression
// gate compares like with like via -against.
type scaleReport struct {
	Schema      string      `json:"schema"`
	GeneratedAt time.Time   `json:"generatedAt"`
	Seed        int64       `json:"seed"`
	Host        hostInfo    `json:"host"`
	Cases       []scaleJSON `json:"cases"`
}

type scaleJSON struct {
	Case          string  `json:"case"`
	Participants  int     `json:"participants"`
	Prefixes      int     `json:"prefixes"`
	Updates       int     `json:"updates"`
	LoadNS        int64   `json:"load_ns"`
	CompileNS     int64   `json:"compile_ns"`
	HeapPerPrefix float64 `json:"heapBytesPerPrefix"`
	SerialNS      int64   `json:"serial_ns"`
	SerialRate    float64 `json:"serialUpdatesPerSec"`
	CoalescedNS   int64   `json:"coalesced_ns"`
	CoalescedRate float64 `json:"coalescedUpdatesPerSec"`
	Applied       int64   `json:"appliedEntries"`
	CoalesceRatio float64 `json:"coalesceRatio"`
	Speedup       float64 `json:"speedup"`
	InstallP50NS  int64   `json:"installP50_ns"`
	InstallP95NS  int64   `json:"installP95_ns"`
	InstallP99NS  int64   `json:"installP99_ns"`
	Identical     bool    `json:"identical"`
}

// writeScaleReport runs the scale cases (all, or just `only`) and writes
// the baseline. The 1000-participant case must clear the
// experiments.MinScaleSpeedup floor; every case must end byte-identical
// across the two ingestion paths.
func writeScaleReport(path, only string, seed int64) error {
	report := scaleReport{
		Schema:      "sdx-bench/scale/v1",
		GeneratedAt: time.Now().UTC(),
		Seed:        seed,
		Host: hostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}
	ran := 0
	for _, c := range experiments.ScaleCases {
		if only != "" && only != c.Name {
			continue
		}
		ran++
		fmt.Printf("scale %s: %d participants, %d prefixes, %d churn updates...\n",
			c.Name, c.Participants, c.Prefixes, c.Updates)
		r, err := experiments.Scale(c, seed)
		if err != nil {
			return err
		}
		if c.Participants >= 1000 && r.Speedup < experiments.MinScaleSpeedup {
			return fmt.Errorf("scale %s: coalesced speedup %.2fx below the %.1fx floor",
				c.Name, r.Speedup, experiments.MinScaleSpeedup)
		}
		fmt.Printf("  serial %.0f upd/s, coalesced %.0f upd/s (%.2fx, ratio %.1f), install p95 %v\n",
			r.SerialRate, r.CoalescedRate, r.Speedup, r.CoalesceRatio,
			r.InstallP95.Round(time.Millisecond))
		report.Cases = append(report.Cases, scaleJSON{
			Case:          c.Name,
			Participants:  c.Participants,
			Prefixes:      c.Prefixes,
			Updates:       c.Updates,
			LoadNS:        r.LoadTime.Nanoseconds(),
			CompileNS:     r.CompileTime.Nanoseconds(),
			HeapPerPrefix: r.HeapPerPfx,
			SerialNS:      r.SerialTime.Nanoseconds(),
			SerialRate:    r.SerialRate,
			CoalescedNS:   r.CoalescedTime.Nanoseconds(),
			CoalescedRate: r.CoalescedRate,
			Applied:       r.Applied,
			CoalesceRatio: r.CoalesceRatio,
			Speedup:       r.Speedup,
			InstallP50NS:  r.InstallP50.Nanoseconds(),
			InstallP95NS:  r.InstallP95.Nanoseconds(),
			InstallP99NS:  r.InstallP99.Nanoseconds(),
			Identical:     r.Identical,
		})
	}
	if ran == 0 {
		return fmt.Errorf("no scale case named %q", only)
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(report.Cases))
	return nil
}

// maxScaleRegression is the CI gate: a run's install p95 may not exceed
// the committed baseline's by more than this factor for the same case.
const maxScaleRegression = 1.20

// checkScaleRegression compares a fresh report against a committed
// baseline and fails on >20% p95 install-latency regression (or a lost
// identical-end-state assertion) for any case present in both.
func checkScaleRegression(newPath, basePath string) error {
	load := func(p string) (*scaleReport, error) {
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r scaleReport
		if err := json.Unmarshal(buf, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		return &r, nil
	}
	fresh, err := load(newPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	baseline := make(map[string]scaleJSON)
	for _, c := range base.Cases {
		baseline[c.Case] = c
	}
	compared := 0
	for _, c := range fresh.Cases {
		b, ok := baseline[c.Case]
		if !ok {
			continue
		}
		compared++
		if !c.Identical {
			return fmt.Errorf("scale %s: end states diverged across ingestion paths", c.Case)
		}
		if b.InstallP95NS > 0 && float64(c.InstallP95NS) > float64(b.InstallP95NS)*maxScaleRegression {
			return fmt.Errorf("scale %s: install p95 regressed %.1f%% (%v -> %v, gate %.0f%%)",
				c.Case,
				100*(float64(c.InstallP95NS)/float64(b.InstallP95NS)-1),
				time.Duration(b.InstallP95NS).Round(time.Millisecond),
				time.Duration(c.InstallP95NS).Round(time.Millisecond),
				100*(maxScaleRegression-1))
		}
		fmt.Printf("scale %s: install p95 %v vs baseline %v — within gate\n",
			c.Case,
			time.Duration(c.InstallP95NS).Round(time.Millisecond),
			time.Duration(b.InstallP95NS).Round(time.Millisecond))
	}
	if compared == 0 {
		return fmt.Errorf("no shared cases between %s and %s", newPath, basePath)
	}
	return nil
}
