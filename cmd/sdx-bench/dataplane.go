package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"sdx/internal/dataplane"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/trafficgen"

	"math/rand"
)

// dataplaneReport is the machine-readable dataplane baseline written by
// `sdx-bench -dataplane` (schema sdx-bench/dataplane/v1): the fast path
// (compiled dispatch engine + megaflow cache) measured against the naive
// priority-ordered scan at classifier sizes from a small exchange (100
// rules) past the paper's §6 working point (~7k rules after VNH
// grouping) to an ungrouped worst case (50k). All durations are integer
// nanoseconds in fields suffixed _ns.
type dataplaneReport struct {
	Schema      string           `json:"schema"`
	GeneratedAt time.Time        `json:"generatedAt"`
	Seed        int64            `json:"seed"`
	Host        hostInfo         `json:"host"`
	Batch       int              `json:"batch"`
	Points      []dataplanePoint `json:"points"`
	Checks      []dataplaneCheck `json:"checks"`
}

type dataplanePoint struct {
	Rules         int     `json:"rules"`
	EngineBuildNS int64   `json:"engineBuild_ns"`
	PPS           float64 `json:"pps"`
	NsPerPktP50   int64   `json:"nsPerPkt_p50"`
	NsPerPktP99   int64   `json:"nsPerPkt_p99"`
	AllocsPerOp   int64   `json:"allocsPerOp"`
	CacheHitRate  float64 `json:"cacheHitRate"`
	NaiveNsPerPkt int64   `json:"naiveNsPerPkt"`
	Speedup       float64 `json:"speedup"`
}

type dataplaneCheck struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Note string `json:"note"`
}

const dpBatch = 64

// dpRules synthesizes n classifier-shaped rules: dst /24 prefixes
// refined by in-port, a sprinkling of port-specific and drop bands —
// the shape the SDX compiler emits after VNH grouping.
func dpRules(n int, seed int64) []*dataplane.FlowEntry {
	r := rand.New(rand.NewSource(seed))
	es := make([]*dataplane.FlowEntry, 0, n)
	for i := 0; i < n; i++ {
		m := pkt.MatchAll.DstIP(iputil.NewPrefix(iputil.Addr(r.Uint32()), 24)).InPort(pkt.PortID(r.Intn(16)))
		if i%7 == 0 {
			m = m.DstPort([]uint16{80, 443, 53}[r.Intn(3)])
		}
		var acts []pkt.Action
		if i%11 != 0 { // every 11th rule is a drop band
			acts = []pkt.Action{pkt.Output(pkt.PortID(100 + r.Intn(16)))}
		}
		es = append(es, &dataplane.FlowEntry{
			Priority: 1000 + i,
			Match:    m,
			Actions:  acts,
			Cookie:   uint64(i % 3),
		})
	}
	return es
}

// measurePoint benchmarks one rule count: engine build time, warm
// batched throughput with per-batch latency samples, allocations per
// packet, cache hit rate, and the naive-scan reference on the same
// stream.
func measurePoint(rules int, seed int64) (dataplanePoint, error) {
	pt := dataplanePoint{Rules: rules}
	es := dpRules(rules, seed)
	tbl := dataplane.NewFlowTable()
	tbl.SetCompiled(true)
	tbl.AddBatch(es)

	buildStart := time.Now()
	tbl.Precompile()
	pt.EngineBuildNS = time.Since(buildStart).Nanoseconds()

	// A bounded working set keeps the megaflow cache warm at every rule
	// count, so this measures the paper-relevant steady state: recurring
	// flows between the same participant pairs.
	gen := trafficgen.NewPacketGen(seed+1, trafficgen.PoolsFromEntries(es)).
		SetHitBias(0.9).SetWorkingSet(2048)
	stream := make([]pkt.Packet, dpBatch)
	out := make([]pkt.Packet, 0, 4*dpBatch)

	// Warm the cache over the full working set.
	for i := 0; i < 2048/dpBatch*2; i++ {
		gen.Fill(stream)
		out = tbl.ProcessBatch(stream, out[:0], nil)
	}

	// Timed run: per-batch latency samples. Stream generation happens
	// outside the timed window, so pps is derived from the sampled
	// per-packet time.
	const batches = 2000
	samples := make([]float64, 0, batches)
	for i := 0; i < batches; i++ {
		gen.Fill(stream)
		t0 := time.Now()
		out = tbl.ProcessBatch(stream, out[:0], nil)
		dt := time.Since(t0)
		samples = append(samples, float64(dt.Nanoseconds())/float64(len(stream)))
	}
	sort.Float64s(samples)
	pt.NsPerPktP50 = int64(samples[len(samples)/2])
	pt.NsPerPktP99 = int64(samples[len(samples)*99/100])
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	pt.PPS = 1e9 / mean
	st := tbl.Stats()
	pt.CacheHitRate = st.HitRate()

	// Allocations per packet on the warm batched path, via the testing
	// harness so the accounting matches `go test -bench`.
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = tbl.ProcessBatch(stream, out[:0], nil)
		}
	})
	pt.AllocsPerOp = res.AllocsPerOp() / int64(len(stream))

	// Naive reference on the same stream (fewer packets at large rule
	// counts: the scan is O(rules) per packet).
	naivePkts := 20000
	if rules >= 7000 {
		naivePkts = 2000
	}
	probe := make([]pkt.Packet, naivePkts)
	gen.Fill(probe)
	t0 := time.Now()
	for _, p := range probe {
		tbl.LookupNaive(p)
	}
	pt.NaiveNsPerPkt = time.Since(t0).Nanoseconds() / int64(naivePkts)
	if pt.NsPerPktP50 > 0 {
		pt.Speedup = float64(pt.NaiveNsPerPkt) / float64(pt.NsPerPktP50)
	}
	return pt, nil
}

// writeDataplaneReport measures the fast path at each rule count,
// differentially spot-checks compiled vs naive on every table, and
// writes the baseline file. The 7k-rule point must show at least a 5x
// warm-cache speedup over the naive scan, or the run fails.
func writeDataplaneReport(path string, seed int64) error {
	report := dataplaneReport{
		Schema:      "sdx-bench/dataplane/v1",
		GeneratedAt: time.Now().UTC(),
		Seed:        seed,
		Batch:       dpBatch,
		Host: hostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	for _, rules := range []int{100, 1000, 7000, 50000} {
		pt, err := measurePoint(rules, seed)
		if err != nil {
			return err
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("  %6d rules: %8.0f pps, p50 %5dns p99 %5dns, %d allocs/pkt, cache %5.1f%%, naive %7dns/pkt, %6.1fx\n",
			pt.Rules, pt.PPS, pt.NsPerPktP50, pt.NsPerPktP99, pt.AllocsPerOp,
			pt.CacheHitRate*100, pt.NaiveNsPerPkt, pt.Speedup)

		// Differential spot check at this size: compiled and naive must
		// agree over a fresh stream before the numbers mean anything.
		es := dpRules(rules, seed)
		tbl := dataplane.NewFlowTable()
		tbl.SetCompiled(true)
		tbl.AddBatch(es)
		g := trafficgen.NewPacketGen(seed+7, trafficgen.PoolsFromEntries(es))
		diverged := 0
		for i := 0; i < 2000; i++ {
			p := g.Next()
			if tbl.Lookup(p) != tbl.LookupNaive(p) {
				diverged++
			}
		}
		report.Checks = append(report.Checks, dataplaneCheck{
			Name: fmt.Sprintf("differential-%d", rules),
			OK:   diverged == 0,
			Note: fmt.Sprintf("%d/2000 packets diverged", diverged),
		})
		if diverged > 0 {
			return fmt.Errorf("dataplane: %d rules: compiled diverged from naive on %d/2000 packets", rules, diverged)
		}
	}

	for _, pt := range report.Points {
		if pt.AllocsPerOp != 0 {
			return fmt.Errorf("dataplane: %d rules: warm batched path allocates %d/pkt, want 0", pt.Rules, pt.AllocsPerOp)
		}
	}
	var speedupOK bool
	for _, pt := range report.Points {
		if pt.Rules == 7000 {
			speedupOK = pt.Speedup >= 5
			report.Checks = append(report.Checks, dataplaneCheck{
				Name: "speedup-7k",
				OK:   speedupOK,
				Note: fmt.Sprintf("%.1fx warm-cache vs naive (floor 5x)", pt.Speedup),
			})
			if !speedupOK {
				return fmt.Errorf("dataplane: 7k rules: %.1fx speedup, want >= 5x", pt.Speedup)
			}
		}
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(buf))
	return nil
}
