package sdx

import (
	"net"
	"sync"
	"testing"
	"time"

	"sdx/internal/bgp"
	"sdx/internal/dataplane"
	"sdx/internal/iputil"
	"sdx/internal/openflow"
	"sdx/internal/pkt"
)

// TestDistributedFabric runs the paper's controller/switch split: the
// controller's compiled rules are mirrored over the control channel to a
// fabric switch in (what would be) another process, and the remote
// fabric forwards policy traffic identically to the local one.
func TestDistributedFabric(t *testing.T) {
	// Remote fabric switch behind a TCP control channel.
	remote := dataplane.NewSwitch("remote-fabric")
	remote.AddPort(1, "A1", nil)
	deliveredB := make(chan pkt.Packet, 8)
	deliveredC := make(chan pkt.Packet, 8)
	remote.AddPort(2, "B1", func(p pkt.Packet) { deliveredB <- p })
	remote.AddPort(4, "C1", func(p pkt.Packet) { deliveredC <- p })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer ln.Close()
	agent := openflow.NewAgent(remote)
	go agent.ListenAndServe(ln)

	client, err := openflow.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Start()

	// Controller with the Figure 1 style exchange.
	ctrl := New()
	for _, cfg := range []ParticipantConfig{
		{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}}},
		{AS: 300, Name: "C", Ports: []PhysicalPort{{ID: 4}}},
	} {
		if _, err := ctrl.AddParticipant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	ctrl.AddRuleMirror(openflow.Mirror{C: client})

	p1 := MustParsePrefix("11.0.0.0/8")
	announce := func(peer uint32, path ...uint32) {
		var port pkt.PortID
		switch peer {
		case 200:
			port = 2
		case 300:
			port = 4
		}
		ctrl.ProcessUpdate(peer, &bgp.Update{
			Attrs: &bgp.PathAttrs{ASPath: path, NextHop: iputil.Addr(PortIP(port))},
			NLRI:  []iputil.Prefix{p1},
		})
	}
	announce(200, 200, 900, 901)
	announce(300, 300)
	if rep := ctrl.Recompile(CompilePolicy(100, nil, []Term{
		Fwd(MatchAll.DstPort(80), 200),
	})); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if err := client.Barrier(); err != nil {
		t.Fatal(err)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	local := uint32(ctrl.Switch().Table().Len())
	if stats.Rules != local {
		t.Fatalf("remote table has %d rules, local has %d", stats.Rules, local)
	}

	// Forward through the REMOTE fabric only, using the group VMAC the
	// border router would have learned through the VNH advertisement.
	comp := ctrl.Compiled()
	gi, ok := comp.GroupIdx[p1]
	if !ok {
		t.Fatal("p1 not grouped")
	}
	web := pkt.Packet{
		EthType: pkt.EthTypeIPv4, DstMAC: comp.VMACs[gi],
		SrcIP: MustParseAddr("50.0.0.1"), DstIP: MustParseAddr("11.1.1.1"),
		Proto: pkt.ProtoTCP, DstPort: 80,
	}
	remote.Inject(1, web)
	select {
	case p := <-deliveredB:
		if p.DstMAC != PortMAC(2) {
			t.Fatalf("remote delivery dstmac %v", p.DstMAC)
		}
	case <-time.After(time.Second):
		t.Fatal("remote fabric did not forward policy traffic to B")
	}

	// Non-web traffic follows the default band to C, still remotely.
	ssh := web
	ssh.DstPort = 22
	remote.Inject(1, ssh)
	select {
	case <-deliveredC:
	case <-time.After(time.Second):
		t.Fatal("remote fabric did not forward default traffic to C")
	}

	// A fast-path update (withdrawal) propagates to the remote fabric.
	before := mustStats(t, client).Rules
	ctrl.ProcessUpdate(200, &bgp.Update{Withdrawn: []iputil.Prefix{p1}})
	if err := client.Barrier(); err != nil {
		t.Fatal(err)
	}
	after := mustStats(t, client).Rules
	if after <= before {
		t.Fatalf("fast-path rules did not reach the remote fabric: %d -> %d", before, after)
	}

	// And the background optimization shrinks it back.
	ctrl.Recompile()
	client.Barrier()
	final := mustStats(t, client).Rules
	if final >= after {
		t.Fatalf("recompile did not clean the remote fast band: %d -> %d", after, final)
	}
}

func mustStats(t *testing.T, c *openflow.Client) *openflow.StatsReply {
	t.Helper()
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDistributedPacketInNormalForwarding checks the PACKET_IN path: a
// remote table miss reaches the controller, which applies normal L2
// forwarding and answers with a PACKET_OUT.
func TestDistributedPacketInNormalForwarding(t *testing.T) {
	remote := dataplane.NewSwitch("remote-fabric")
	remote.AddPort(1, "A1", nil)
	delivered := make(chan pkt.Packet, 1)
	remote.AddPort(2, "B1", func(p pkt.Packet) { delivered <- p })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer ln.Close()
	agent := openflow.NewAgent(remote)
	go agent.ListenAndServe(ln)

	client, err := openflow.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctrl := New()
	ctrl.AddParticipant(ParticipantConfig{AS: 100, Name: "A", Ports: []PhysicalPort{{ID: 1}}})
	ctrl.AddParticipant(ParticipantConfig{AS: 200, Name: "B", Ports: []PhysicalPort{{ID: 2}}})

	// Wire remote table misses into the controller's normal forwarding,
	// answered via PACKET_OUT — the ARP/L2 path of the real deployment.
	var mu sync.Mutex
	client.OnPacketIn = func(p pkt.Packet) {
		mu.Lock()
		defer mu.Unlock()
		if egress, ok := ctrl.NormalEgress(p); ok {
			client.PacketOut(egress, p)
		}
	}
	client.Start()
	if err := client.Echo(); err != nil {
		t.Fatal(err)
	}

	// Empty remote table; dstmac = B's real port MAC.
	remote.Inject(1, pkt.Packet{DstMAC: PortMAC(2), EthType: pkt.EthTypeIPv4})
	select {
	case p := <-delivered:
		if p.DstMAC != PortMAC(2) {
			t.Fatalf("delivered %v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("PACKET_IN/PACKET_OUT round trip failed")
	}
}
