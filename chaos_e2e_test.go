package sdx_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"sdx"
	"sdx/internal/bgp"
	"sdx/internal/simnet"
	"sdx/internal/simnet/chaostest"
)

// chaosSeeds is the fixed seed matrix CI replays (go test -run TestChaos
// -count=3). Each seed produces a distinct schedule injecting at least
// four fault kinds: a mid-stream reset, a corruption window, a delivery
// stall and a global partition.
var chaosSeeds = []int64{11, 23, 42}

func chaosSpecs() []chaostest.PeerSpec {
	pfx := sdx.MustParsePrefix
	return []chaostest.PeerSpec{
		{
			AS: 100, Port: 1,
			Outbound: []sdx.Term{
				sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
				sdx.Fwd(sdx.MatchAll.DstPort(443), 300),
			},
		},
		{
			AS: 200, Port: 2,
			Anns: []chaostest.Announcement{
				{Prefix: pfx("11.0.0.0/8"), Path: []uint32{200, 900}},
				{Prefix: pfx("12.0.0.0/8"), Path: []uint32{200}},
			},
		},
		{
			AS: 300, Port: 4,
			Anns: []chaostest.Announcement{
				{Prefix: pfx("11.0.0.0/8"), Path: []uint32{300}},
				{Prefix: pfx("13.0.0.0/8"), Path: []uint32{300}},
			},
		},
	}
}

// chaosState is everything a run must agree on with its golden twin,
// already normalized for cross-run comparison.
type chaosState struct {
	ribs  map[uint32]string // per-AS Loc-RIB dump
	canon string            // Compiled.Canonical of the controller
}

// settleAndCapture drives a converged deployment to its quiescent
// installed state (recompile so the fast band folds away, then barrier
// the control channel) and captures it. It also asserts the remote
// fabric's table is byte-identical to the controller's local one.
func settleAndCapture(t *testing.T, seed int64, d *chaostest.Deployment) chaosState {
	t.Helper()
	d.Ctrl.Recompile()
	client := d.OFClient()
	if client == nil {
		t.Fatalf("seed %d: control channel down after convergence", seed)
	}
	if err := client.Barrier(); err != nil {
		t.Fatalf("seed %d: barrier: %v", seed, err)
	}
	if n := d.Ctrl.FastRules(); n != 0 {
		t.Fatalf("seed %d: %d fast-path rules survived the recompile", seed, n)
	}
	local, remote := d.LocalRules(), d.RemoteRules()
	if strings.Join(local, "\n") != strings.Join(remote, "\n") {
		t.Fatalf("seed %d: remote fabric diverges from local\n local:\n  %s\n remote:\n  %s",
			seed, strings.Join(local, "\n  "), strings.Join(remote, "\n  "))
	}
	st := chaosState{ribs: make(map[uint32]string)}
	for as, p := range d.Peers {
		st.ribs[as] = strings.Join(chaostest.Normalize(p.RIBDump()), "\n")
	}
	st.canon = chaostest.NormalizeText(d.Ctrl.Compiled().Canonical())
	return st
}

// runChaos executes one golden + one faulted run for a seed and asserts
// the faulted run converges back to exactly the golden state. Every
// failure message carries the seed, which is the complete repro recipe.
func runChaos(t *testing.T, seed int64) {
	t.Helper()
	baseline := runtime.NumGoroutine()

	// Golden run: same topology, no faults.
	goldenNet := simnet.New(seed)
	golden, err := chaostest.Start(goldenNet, seed, chaosSpecs(), chaostest.Options{})
	if err != nil {
		t.Fatalf("seed %d: golden start: %v", seed, err)
	}
	if err := golden.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("seed %d: golden run: %v", seed, err)
	}
	if err := golden.VerifyTables(); err != nil {
		t.Fatalf("seed %d: golden run tables: %v", seed, err)
	}
	want := settleAndCapture(t, seed, golden)
	golden.Stop()
	goldenNet.Close()

	// Faulted run: identical stack, plus the seed's fault schedule.
	n := simnet.New(seed)
	d, err := chaostest.Start(n, seed, chaosSpecs(), chaostest.Options{})
	if err != nil {
		t.Fatalf("seed %d: start: %v", seed, err)
	}
	if err := d.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("seed %d: pre-fault convergence: %v", seed, err)
	}

	script := simnet.GenScript(seed, chaostest.Targets(chaosSpecs()))
	if kinds := script.Kinds(); len(kinds) < 4 {
		t.Fatalf("seed %d: schedule injects only %v", seed, kinds)
	}
	if err := script.Run(context.Background(), n); err != nil {
		t.Fatalf("seed %d: script: %v", seed, err)
	}
	// Post-heal: bounce any transport that carried corrupted bytes — a
	// desynced-but-alive session must not be trusted to re-converge.
	n.ResetTainted()

	elapsed, err := d.WaitConvergedTimed(20 * time.Second)
	if err != nil {
		t.Fatalf("seed %d: post-heal convergence: %v\nreproduce with this schedule:\n%s",
			seed, err, script)
	}
	benchConverge.Observe(int64(elapsed))
	if err := d.VerifyTables(); err != nil {
		t.Errorf("seed %d: post-heal tables: %v", seed, err)
	}
	got := settleAndCapture(t, seed, d)

	for as, wantRIB := range want.ribs {
		if got.ribs[as] != wantRIB {
			t.Errorf("seed %d: AS%d post-heal Loc-RIB != fault-free run\n got:\n  %s\n want:\n  %s\nschedule:\n%s",
				seed, as, strings.ReplaceAll(got.ribs[as], "\n", "\n  "),
				strings.ReplaceAll(wantRIB, "\n", "\n  "), script)
		}
	}
	if got.canon != want.canon {
		t.Errorf("seed %d: post-heal compilation != fault-free run\n got:\n%s\n want:\n%s\nschedule:\n%s",
			seed, got.canon, want.canon, script)
	}

	// Telemetry consistency: the schedule's >1s stall/partition windows
	// must have expired at least one hold timer, and after teardown every
	// session ever established must also have closed.
	reg := d.Ctrl.Metrics()
	if v := reg.Counter("bgp.hold_expired").Value(); v < 1 {
		t.Errorf("seed %d: no hold timer expired under the schedule:\n%s", seed, script)
	}
	// Both ends of every session publish into the registry, so the three
	// initial sessions alone record six establishments; the schedule's
	// faults must have forced at least one full reconnect on top.
	established := reg.Counter("bgp.sessions_established").Value()
	if established < 2*int64(len(d.Peers))+2 {
		t.Errorf("seed %d: only %d session-ends established; faults should force reconnects", seed, established)
	}
	if c := reg.Histogram(chaostest.ConvergeMetric).Count(); c < 1 {
		t.Errorf("seed %d: no %s sample recorded for the post-heal convergence", seed, chaostest.ConvergeMetric)
	}
	d.Stop()
	n.Close()
	waitCounterSettles(t, seed, established, func() int64 {
		return reg.Counter("bgp.sessions_closed").Value()
	})

	waitGoroutines(t, seed, baseline)
}

func waitCounterSettles(t *testing.T, seed int64, want int64, get func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: %d sessions established but only %d closed after teardown",
				seed, want, get())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitGoroutines asserts the run leaked no goroutines (small slack for
// runtime helpers), dumping all stacks on failure.
func waitGoroutines(t *testing.T, seed int64, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			var b strings.Builder
			_ = pprof.Lookup("goroutine").WriteTo(&b, 1)
			t.Fatalf("seed %d: goroutine leak: %d at start, %d after teardown\n%s",
				seed, baseline, runtime.NumGoroutine(), b.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosConvergence is the acceptance gate: for every seed in the
// matrix, a full SDX stack driven through a ≥4-fault-kind schedule
// converges back to exactly the fault-free run's state.
func TestChaosConvergence(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// TestChaosScriptReproducibility: the schedule is a pure function of the
// seed — two generations are step-for-step identical, and distinct seeds
// produce distinct schedules. This is what makes any soak failure a
// one-seed repro.
func TestChaosScriptReproducibility(t *testing.T) {
	targets := chaostest.Targets(chaosSpecs())
	var traces []string
	for _, seed := range chaosSeeds {
		a := simnet.GenScript(seed, targets)
		b := simnet.GenScript(seed, targets)
		at, bt := strings.Join(a.Trace(), "\n"), strings.Join(b.Trace(), "\n")
		if at != bt {
			t.Fatalf("seed %d: two generations differ:\n%s\n--\n%s", seed, at, bt)
		}
		traces = append(traces, at)
	}
	for i := 1; i < len(traces); i++ {
		if traces[i] == traces[0] {
			t.Fatalf("seeds %d and %d produced identical schedules", chaosSeeds[0], chaosSeeds[i])
		}
	}
}

// TestChaosSessionStates spot-checks the FSM surface the harness depends
// on: an idle-after-reset peer re-establishes through its dialer.
func TestChaosSessionStates(t *testing.T) {
	n := simnet.New(7)
	defer n.Close()
	d, err := chaostest.Start(n, 7, chaosSpecs(), chaostest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := d.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	first := d.Peers[200].Session()
	n.Reset("peer200")
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := d.Peers[200].Session()
		if s != nil && s != first && s.State() == bgp.StateEstablished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("AS200 did not re-establish after reset; state=%v", first.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSoak runs extra seeds beyond the fixed matrix; skipped under
// -short so PR CI stays fast while the full job soaks. Override the
// round count with SDX_CHAOS_SOAK_ROUNDS.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rounds := 2
	if env := os.Getenv("SDX_CHAOS_SOAK_ROUNDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("SDX_CHAOS_SOAK_ROUNDS=%q: %v", env, err)
		}
		rounds = v
	}
	for round := 0; round < rounds; round++ {
		seed := int64(1000 + round*37)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}
