// Package sdx is a software defined Internet exchange point, a
// from-scratch Go implementation of "SDX: A Software Defined Internet
// Exchange" (Gupta et al., SIGCOMM 2014).
//
// An SDX gives each participant AS the illusion of its own virtual SDN
// switch on which it can write fine-grained forwarding policies —
// application-specific peering, inbound traffic engineering, wide-area
// server load balancing, middlebox redirection — while the runtime
// guarantees isolation between participants and consistency with the BGP
// routes exchanged at the IXP's route server. The compilation pipeline
// keeps the switch rule table small by grouping prefixes into forwarding
// equivalence classes tagged with virtual MAC addresses, and reacts to
// BGP updates in sub-second time through a two-stage fast path.
//
// # Quick start
//
//	x := sdx.New()
//	a, _ := x.AddParticipant(sdx.ParticipantConfig{AS: 100, Name: "A",
//		Ports: []sdx.PhysicalPort{{ID: 1}}})
//	_ = a
//	// AS A: web via B, everything else follows BGP.
//	x.Recompile(sdx.CompilePolicy(100, nil, []sdx.Term{
//		sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
//	}))
//
// Border routers attach with the router package
// (sdx/internal/router.Attach) or over real BGP sessions via ListenBGP.
// See the examples directory for complete scenarios and DESIGN.md for
// the architecture.
package sdx

import (
	"sdx/internal/arp"
	"sdx/internal/bgp"
	"sdx/internal/core"
	"sdx/internal/dataplane"
	"sdx/internal/fabric"
	"sdx/internal/flow"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
	"sdx/internal/policy"
	"sdx/internal/probe"
	"sdx/internal/reconcile"
	"sdx/internal/rs"
	"sdx/internal/telemetry"
)

// Core controller types.
type (
	// Controller is the SDX controller: route server, policy compiler,
	// fabric switch and ARP responder in one.
	Controller = core.Controller
	// ParticipantConfig declares one member AS.
	ParticipantConfig = core.ParticipantConfig
	// Participant is a registered member AS.
	Participant = core.Participant
	// PhysicalPort is a border-router attachment to the fabric.
	PhysicalPort = core.PhysicalPort
	// Term is one policy term (match plus action).
	Term = core.Term
	// TermAction is a term's forwarding action.
	TermAction = core.TermAction
	// RouteAd is a (VNH-rewritten) route advertisement to a border router.
	RouteAd = core.RouteAd
	// UpdateResult reports the effect of one BGP update.
	UpdateResult = core.UpdateResult
	// CompileReport summarizes a full compilation pass.
	CompileReport = core.CompileReport

	// CompileOptions selects compiler variants (serial baseline, ablations).
	CompileOptions = core.CompileOptions
	// CompileOption configures one Recompile pass (variadic-option form).
	CompileOption = core.CompileOption
	// Compiled is the output of a compilation pass.
	Compiled = core.Compiled
	// PrefixGroup is one forwarding equivalence class.
	PrefixGroup = core.PrefixGroup
	// ExportPolicy restricts route-server exports per peer.
	ExportPolicy = rs.ExportPolicy

	// PeerUpdate pairs one BGP UPDATE with the participant it came from —
	// the unit of the batch-first ingestion API (Controller.ApplyBatch).
	PeerUpdate = rs.PeerUpdate
	// UpdateQueue is the bounded, coalescing ingestion queue in front of
	// a Controller (NewUpdateQueue; see BGPServer.UseIngestQueue).
	UpdateQueue = core.UpdateQueue
	// QueueConfig tunes an UpdateQueue.
	QueueConfig = core.QueueConfig
	// QueueStats is a point-in-time snapshot of an UpdateQueue.
	QueueStats = core.QueueStats
)

// NewUpdateQueue builds and starts a coalescing ingestion queue in front
// of a controller.
var NewUpdateQueue = core.NewUpdateQueue

// ErrQueueClosed is returned by UpdateQueue.Enqueue after Stop.
var ErrQueueClosed = core.ErrQueueClosed

// Telemetry types (see internal/telemetry; injected with WithTelemetry /
// WithTracer, served by sdxd's -metrics endpoint).
type (
	// Registry is a named collection of counters, gauges and histograms.
	Registry = telemetry.Registry
	// Snapshot is a point-in-time copy of every metric in a registry.
	Snapshot = telemetry.Snapshot
	// HistogramSnapshot summarizes one histogram (count, sum, p50/95/99).
	HistogramSnapshot = telemetry.HistogramSnapshot
	// Tracer is a bounded ring buffer of typed control-plane events.
	Tracer = telemetry.Tracer
	// Event is one traced control-plane event.
	Event = telemetry.Event
	// EventType identifies one kind of traced event.
	EventType = telemetry.EventType
)

// Telemetry constructors and controller options.
var (
	// NewRegistry returns an empty metric registry.
	NewRegistry = telemetry.NewRegistry
	// NewTracer returns a tracer retaining the most recent events.
	NewTracer = telemetry.NewTracer
	// WithTelemetry injects a shared metric registry into a controller.
	WithTelemetry = core.WithTelemetry
	// WithTracer injects a shared event tracer into a controller.
	WithTracer = core.WithTracer
)

// Traced event types.
const (
	EventBGPUpdateReceived  = telemetry.EventBGPUpdateReceived
	EventFECChanged         = telemetry.EventFECChanged
	EventCompileStarted     = telemetry.EventCompileStarted
	EventCompileDone        = telemetry.EventCompileDone
	EventRuleInstalled      = telemetry.EventRuleInstalled
	EventARPReply           = telemetry.EventARPReply
	EventSessionStateChange = telemetry.EventSessionStateChange
)

// Recompile options (ctrl.Recompile(sdx.CompileSerial()), ...).
var (
	// CompileSerial forces the single-threaded reference compiler.
	CompileSerial = core.CompileSerial
	// CompileNaiveDstIP disables VNH grouping (one rule per prefix).
	CompileNaiveDstIP = core.CompileNaiveDstIP
	// CompileWithoutCache disables sub-policy memoization.
	CompileWithoutCache = core.CompileWithoutCache
	// CompileWithoutConcat disables disjoint concatenation.
	CompileWithoutConcat = core.CompileWithoutConcat
	// WithCompileOptions applies a whole CompileOptions struct.
	WithCompileOptions = core.WithCompileOptions
	// CompilePolicy folds a policy install into a Recompile call.
	CompilePolicy = core.CompilePolicy
)

// Packet-model types.
type (
	// Packet is a located packet in the fabric.
	Packet = pkt.Packet
	// Match is a conjunctive header predicate.
	Match = pkt.Match
	// Mods is a set of header rewrites.
	Mods = pkt.Mods
	// MAC is a 48-bit Ethernet address.
	MAC = pkt.MAC
	// PortID identifies a fabric port.
	PortID = pkt.PortID
	// Addr is an IPv4 address.
	Addr = iputil.Addr
	// Prefix is an IPv4 CIDR prefix.
	Prefix = iputil.Prefix
	// Classifier is a compiled prioritized rule list.
	Classifier = policy.Classifier
	// FlowEntry is one installed switch rule.
	FlowEntry = dataplane.FlowEntry
	// Update is a BGP UPDATE message.
	Update = bgp.Update
	// PathAttrs are BGP path attributes.
	PathAttrs = bgp.PathAttrs
	// ARPResponder answers virtual-next-hop ARP queries.
	ARPResponder = arp.Responder
)

// MatchAll is the wildcard match; build constraints fluently, e.g.
// sdx.MatchAll.DstPort(80).SrcIP(prefix).
var MatchAll = pkt.MatchAll

// NoMods is the empty header-rewrite set.
var NoMods = pkt.NoMods

// New returns a fresh SDX controller with an empty fabric.
func New(opts ...core.Option) *Controller { return core.NewController(opts...) }

// WithLogger directs controller logging to logf.
var WithLogger = core.WithLogger

// WithRouteAgeOut sets how long a flapped peer's routes survive before
// aging out of the RIBs.
var WithRouteAgeOut = core.WithRouteAgeOut

// Policy-term constructors (§2's four application idioms).
var (
	// Fwd builds an application-specific-peering outbound term.
	Fwd = core.Fwd
	// FwdPort builds an inbound traffic-engineering term.
	FwdPort = core.FwdPort
	// FwdMiddlebox builds a middlebox-redirection outbound term.
	FwdMiddlebox = core.FwdMiddlebox
	// DropTerm builds an explicit drop term.
	DropTerm = core.DropTerm
	// RewriteTerm builds a wide-area load-balancing rewrite term.
	RewriteTerm = core.RewriteTerm
)

// Address parsing helpers.
var (
	// ParseAddr parses a dotted-quad IPv4 address.
	ParseAddr = iputil.ParseAddr
	// MustParseAddr is ParseAddr panicking on error.
	MustParseAddr = iputil.MustParseAddr
	// ParsePrefix parses CIDR notation.
	ParsePrefix = iputil.ParsePrefix
	// MustParsePrefix is ParsePrefix panicking on error.
	MustParsePrefix = iputil.MustParsePrefix
	// ParseMAC parses colon-separated MAC notation.
	ParseMAC = pkt.ParseMAC
)

// Fabric addressing helpers.
var (
	// PortMAC derives a fabric port's real MAC address.
	PortMAC = core.PortMAC
	// PortIP derives a fabric port's IXP-subnet IP.
	PortIP = core.PortIP
	// IsVMAC reports whether a MAC tags a forwarding equivalence class.
	IsVMAC = core.IsVMAC
)

// VNHSubnet is the pool virtual next hops are drawn from.
var VNHSubnet = core.VNHSubnet

// IXPSubnet is the exchange's shared layer-2 subnet.
var IXPSubnet = core.IXPSubnet

// Multi-switch fabric (§4.1 "multiple physical switches").
type (
	// Fabric is an SDX data plane spread across several switches.
	Fabric = fabric.Fabric
	// FabricTopology describes the switches, port placement and trunks.
	FabricTopology = fabric.Topology
	// FabricLink is one inter-switch trunk.
	FabricLink = fabric.Link
)

// NewFabric builds a multi-switch fabric; attach it to a controller with
// Controller.AddRuleMirror.
var NewFabric = fabric.New

// Continuous reconciliation: a background loop that diffs each switch's
// intended table against what is actually installed and issues minimal
// repairs (escalating to flush-and-replay on persistent drift).
type (
	// Reconciler is the continuous intended-vs-installed repair loop.
	Reconciler = reconcile.Reconciler
	// ReconcileConfig tunes pass interval and escalation threshold.
	ReconcileConfig = reconcile.Config
	// ReconcileTarget binds one switch's intended table, installed-state
	// readback and repair sink into the loop.
	ReconcileTarget = reconcile.Target
	// ReconcileSink receives the repair operations for one target.
	ReconcileSink = reconcile.Sink
	// ReconcileDrift counts one target's missing/stale/extra entries and
	// trunk coverage gaps.
	ReconcileDrift = reconcile.Drift
	// ReconcileSummary reports one full reconciliation pass.
	ReconcileSummary = reconcile.Summary
)

// NewReconciler builds a reconciler over the given targets; run it with
// Start or drive passes manually with RunOnce.
var NewReconciler = reconcile.New

// Dataplane liveness probing: injected probe packets that traverse the
// forwarding path between participant ports and are punted back by the
// delivering switch, yielding per-pair RTT and loss.
type (
	// Prober drives liveness probes across participant port pairs.
	Prober = probe.Prober
	// ProbeConfig tunes probe cadence, timeout and loss threshold.
	ProbeConfig = probe.Config
	// ProbePair is one directed (from, to) port pair under probing.
	ProbePair = probe.Pair
	// ProbePairHealth is the per-pair liveness verdict with RTT stats.
	ProbePairHealth = probe.PairHealth
)

// NewProber builds a prober that injects probes through the given hook;
// feed delivered probes back with Deliver.
var NewProber = probe.New

// ProbeEthType marks probe packets (IEEE local-experimental ethertype).
const ProbeEthType = probe.EthType

// Sampled flow export with BGP-correlated analytics: a 1-in-N dataplane
// sampler feeds compact flow records into an aggregator that joins
// heavy flows against the route server's Loc-RIB and can drive policy
// (auto-rebalancing an inbound-TE group away from an overloaded port).
type (
	// FlowSampler exports 1-in-N sampled packets as flow records
	// (attach with FlowTable.SetSampler).
	FlowSampler = flow.Sampler
	// FlowKey is the 5-tuple + ingress-port identity of one flow.
	FlowKey = flow.Key
	// FlowRecord is one exported sample.
	FlowRecord = flow.Record
	// FlowConfig tunes the analytics stage (rates, top-k, thresholds).
	FlowConfig = flow.Config
	// FlowAnalytics aggregates records into per-flow rate estimates,
	// BGP attribution and heavy-hitter events.
	FlowAnalytics = flow.Analytics
	// FlowStat is one tracked flow's estimated state.
	FlowStat = flow.FlowStat
	// FlowAttribution is the Loc-RIB join result for one flow.
	FlowAttribution = flow.Attribution
	// FlowEvent is one edge-triggered heavy-hitter notification.
	FlowEvent = flow.Event
	// FlowRebalancer demotes overloaded ports in balance groups on
	// heavy-hitter events and recompiles their inbound policy.
	FlowRebalancer = flow.Rebalancer
	// FlowBalanceGroup declares one auto-balanced inbound-TE workload.
	FlowBalanceGroup = flow.BalanceGroup
)

// NewFlowSampler builds a flow-record exporter for FlowTable.SetSampler.
var NewFlowSampler = flow.NewSampler

// NewFlowAnalytics builds the aggregation/join/detection stage over a
// sampler's record stream.
var NewFlowAnalytics = flow.NewAnalytics

// NewRIBResolver builds a TTL-snapshot Loc-RIB resolver for flow
// attribution.
var NewRIBResolver = flow.NewRIBResolver

// NewFlowRebalancer builds the heavy-hitter→policy feedback stage.
var NewFlowRebalancer = flow.NewRebalancer
