package sdx

import (
	"testing"

	"sdx/internal/lint"
)

// TestStaticAnalysisClean runs the SDX analyzer suite (internal/lint) over
// every package in the module and fails on any unsuppressed finding —
// the same check as `go run ./cmd/sdx-lint ./...`, enforced by tier-1 so
// a regression cannot land. New true positives must be fixed; accepted
// false positives need a `//lint:ignore <analyzer> <reason>` with a real
// reason at the site.
func TestStaticAnalysisClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	for _, d := range lint.Run(pkgs, lint.Analyzers()) {
		t.Errorf("%s", d)
	}
}
