// Appspecific replays the paper's first deployment experiment (§5.2,
// Figures 4a and 5a): an AWS-hosted prefix is reachable through upstream
// ASes A and B; the client-side AS C installs an application-specific
// peering policy at t=565s (port-80 traffic shifts to B) and AS B
// withdraws its route at t=1253s (all traffic shifts back to A). Time is
// simulated, so the 30-minute experiment finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"log"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/router"
	"sdx/internal/trafficgen"
)

func main() {
	steps := flag.Int("steps", 1800, "experiment length in simulated seconds")
	policyAt := flag.Int("policy-at", 565, "policy installation time (s)")
	withdrawAt := flag.Int("withdraw-at", 1253, "route withdrawal time (s)")
	flag.Parse()

	x := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
		{AS: 300, Name: "C", Ports: []sdx.PhysicalPort{{ID: 3}}},
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			log.Fatal(err)
		}
	}
	attach := func(as uint32, port sdx.PortID) *router.BorderRouter {
		r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	a, b, c := attach(100, 1), attach(200, 2), attach(300, 3)

	// Both upstreams announce the Amazon /16 (via Transit Portal in the
	// paper); A's path is preferred by default.
	aws := sdx.MustParsePrefix("74.125.0.0/16")
	a.Announce(aws, 100, 16509)
	b.Announce(aws, 200, 701, 16509)
	x.Recompile()

	// The client behind C generates three 1 Mbps UDP flows; one is web.
	exp := trafficgen.New()
	client := sdx.MustParseAddr("41.0.1.10")
	for i, dstPort := range []uint16{80, 5001, 5002} {
		exp.AddFlow(trafficgen.Flow{
			From: c, Src: client, Dst: sdx.MustParseAddr("74.125.1.50"),
			SrcPort: uint16(50000 + i), DstPort: dstPort, RateMbps: 1,
		})
	}
	exp.WatchRouter("via-AS-A", a, nil)
	exp.WatchRouter("via-AS-B", b, nil)

	exp.At(*policyAt, func() {
		fmt.Printf("t=%4ds  AS C installs application-specific peering: port 80 via AS B\n", *policyAt)
		if rep := x.Recompile(sdx.CompilePolicy(300, nil, []sdx.Term{
			sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
		})); rep.Err != nil {
			log.Fatal(rep.Err)
		}
	})
	exp.At(*withdrawAt, func() {
		fmt.Printf("t=%4ds  AS B withdraws its route to AWS (simulated failure)\n", *withdrawAt)
		b.Withdraw(aws)
	})

	res := exp.Run(*steps)

	fmt.Printf("\n%6s %12s %12s\n", "t(s)", "via-AS-A", "via-AS-B")
	for t := 0; t < *steps; t += 60 {
		fmt.Printf("%6d %9.2f Mb %9.2f Mb\n", t, res.Series["via-AS-A"][t], res.Series["via-AS-B"][t])
	}
	fmt.Println("\nExpected shape (paper Fig 5a): 3 Mbps via A until the policy")
	fmt.Println("installs, then 1 Mbps shifts to B; at the withdrawal everything")
	fmt.Println("returns to A within one step (sub-second convergence).")
}
