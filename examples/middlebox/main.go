// Middlebox demonstrates §2/§3.2's redirection through middleboxes with a
// BGP-attribute-derived match: all traffic originated by a content
// network's prefixes (found by filtering the RIB on the AS path, the
// paper's "RIB.filter('as_path', .*43515$)" idiom) is steered through a
// scrubbing/transcoding middlebox hosted on a dedicated fabric port.
package main

import (
	"fmt"
	"log"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/pkt"
	"sdx/internal/router"
)

func main() {
	x := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
		{AS: 500, Name: "mbox", Ports: []sdx.PhysicalPort{{ID: 5}}}, // middlebox host
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			log.Fatal(err)
		}
	}
	attach := func(as uint32, port sdx.PortID) *router.BorderRouter {
		r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	a, b, mbox := attach(100, 1), attach(200, 2), attach(500, 5)

	// B carries transit routes, among them prefixes originated by the
	// video network AS 43515 and unrelated prefixes from AS 15169.
	b.Announce(sdx.MustParsePrefix("208.65.152.0/22"), 200, 43515)
	b.Announce(sdx.MustParsePrefix("208.117.224.0/19"), 200, 3549, 43515)
	b.Announce(sdx.MustParsePrefix("8.8.8.0/24"), 200, 15169)
	// A announces the eyeball prefix the video traffic flows toward.
	a.Announce(sdx.MustParsePrefix("93.184.0.0/16"), 100)
	x.Recompile()

	// The §3.2 idiom: derive the match from current BGP state.
	videoPrefixes, err := x.RouteServer().RIB().FilterASPath(`(^|.* )43515$`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RIB.filter(as_path, .*43515$) -> %v\n\n", videoPrefixes)

	// A steers traffic *from* those prefixes through the middlebox.
	var terms []sdx.Term
	for _, p := range videoPrefixes {
		terms = append(terms, sdx.FwdMiddlebox(sdx.MatchAll.SrcIP(p), 500))
	}
	if rep := x.Recompile(sdx.CompilePolicy(100, nil, terms)); rep.Err != nil {
		log.Fatal(rep.Err)
	}

	mbox.OnDeliver = func(p pkt.Packet) {
		fmt.Printf("  middlebox saw: %v\n", p)
	}
	b.OnDeliver = func(p pkt.Packet) {
		fmt.Printf("  AS B (default path) saw: %v\n", p)
	}

	fmt.Println("A sends video-source traffic (208.65.152.9 -> 8.8.8.8):")
	a.SendIPv4(sdx.MustParseAddr("208.65.152.9"), sdx.MustParseAddr("8.8.8.8"), 1234, 443, nil)
	fmt.Println("A sends unrelated traffic (1.2.3.4 -> 8.8.8.8):")
	a.SendIPv4(sdx.MustParseAddr("1.2.3.4"), sdx.MustParseAddr("8.8.8.8"), 1234, 443, nil)

	fmt.Println("\nOnly traffic whose source belongs to the AS-43515 prefixes is")
	fmt.Println("redirected; everything else follows the BGP default through B.")
}
