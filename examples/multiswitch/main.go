// Multiswitch demonstrates §4.1's multi-switch exchange: the same
// compiled SDX policy distributed across a three-switch chain, with
// participants attached to different switches and traffic crossing
// trunk links transparently.
package main

import (
	"fmt"
	"log"

	"sdx"
	"sdx/internal/bgp"
	"sdx/internal/iputil"
	"sdx/internal/pkt"
)

func main() {
	// Physical layout: A on s1, B on s2, C on s3; chain s1 - s2 - s3.
	fab, err := sdx.NewFabric(sdx.FabricTopology{
		Switches: []string{"s1", "s2", "s3"},
		Ports:    map[sdx.PortID]string{1: "s1", 2: "s2", 4: "s3"},
		Links: []sdx.FabricLink{
			{A: "s1", B: "s2", PortA: 100, PortB: 101},
			{A: "s2", B: "s3", PortA: 102, PortB: 103},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	x := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}},
		{AS: 300, Name: "C", Ports: []sdx.PhysicalPort{{ID: 4}}},
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			log.Fatal(err)
		}
	}
	x.AddRuleMirror(fab)

	// Delivery observers on each participant port.
	for _, port := range []sdx.PortID{2, 4} {
		port := port
		if err := fab.SetDeliver(port, func(p pkt.Packet) {
			fmt.Printf("  delivered at port %d: %v\n", port, p)
		}); err != nil {
			log.Fatal(err)
		}
	}

	// B and C announce 11.0.0.0/8; A prefers C by path length and sends
	// web traffic via B by policy.
	p1 := sdx.MustParsePrefix("11.0.0.0/8")
	x.ProcessUpdate(200, &bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: []uint32{200, 900, 901}, NextHop: sdx.PortIP(2)},
		NLRI:  []iputil.Prefix{p1},
	})
	x.ProcessUpdate(300, &bgp.Update{
		Attrs: &bgp.PathAttrs{ASPath: []uint32{300}, NextHop: sdx.PortIP(4)},
		NLRI:  []iputil.Prefix{p1},
	})
	rep := x.Recompile(sdx.CompilePolicy(100, nil, []sdx.Term{
		sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
	}))
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}
	fmt.Printf("compiled %d rules; distributed across the fabric: %d switch entries\n",
		rep.Rules, fab.TotalRules())

	// Tag packets the way A's border router would (VMAC from the VNH
	// advertisement) and push them in on switch s1.
	vmac := x.Compiled().VMACs[x.Compiled().GroupIdx[p1]]
	send := func(desc string, dstPort uint16) {
		fmt.Println(desc)
		fab.Inject(1, pkt.Packet{
			EthType: pkt.EthTypeIPv4, DstMAC: vmac,
			SrcIP: sdx.MustParseAddr("50.0.0.1"), DstIP: sdx.MustParseAddr("11.1.1.1"),
			Proto: pkt.ProtoTCP, SrcPort: 40000, DstPort: dstPort,
		})
	}
	send("web from A on s1 (policy: via B on s2, one trunk hop):", 80)
	send("ssh from A on s1 (default: via C on s3, two trunk hops):", 22)
}
