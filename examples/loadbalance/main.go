// Loadbalance replays the paper's second deployment experiment (§5.2,
// Figures 4b and 5b): an AWS tenant without any physical presence at the
// exchange announces an anycast service prefix through the SDX and, at
// t=246s, installs a wide-area load-balancing policy that rewrites the
// destination of requests from one client prefix to a second instance.
package main

import (
	"flag"
	"fmt"
	"log"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/pkt"
	"sdx/internal/router"
	"sdx/internal/trafficgen"
)

func main() {
	steps := flag.Int("steps", 600, "experiment length in simulated seconds")
	policyAt := flag.Int("policy-at", 246, "load-balance policy installation time (s)")
	flag.Parse()

	x := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}}, // client side
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}}}, // toward AWS
		{AS: 400, Name: "tenant"},                                // remote participant
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			log.Fatal(err)
		}
	}
	attach := func(as uint32, port sdx.PortID) *router.BorderRouter {
		r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	a, b := attach(100, 1), attach(200, 2)

	// B carries the paths toward both AWS instances.
	b.Announce(sdx.MustParsePrefix("184.72.255.0/24"), 200, 16509) // instance 1
	b.Announce(sdx.MustParsePrefix("184.73.177.0/24"), 200, 16509) // instance 2

	// The tenant announces the anycast service prefix through the SDX
	// and initially steers everything to instance 1.
	anycast := sdx.MustParsePrefix("74.125.1.0/24")
	service := sdx.MustParseAddr("74.125.1.1")
	inst1 := sdx.MustParseAddr("184.72.255.10")
	inst2 := sdx.MustParseAddr("184.73.177.10")
	if _, err := x.AnnouncePrefix(400, anycast); err != nil {
		log.Fatal(err)
	}
	// Policy terms are disjoint by construction (Pyretic's + applies every
	// matching term, so overlapping rewrites would multicast).
	srv := sdx.MatchAll.DstIP(sdx.MustParsePrefix("74.125.1.1/32"))
	setTenantPolicy := func(balanced bool) {
		var terms []sdx.Term
		if balanced {
			// The paper's policy: the 204.57.0.0/24 clients move to #2.
			terms = []sdx.Term{
				sdx.RewriteTerm(srv.SrcIP(sdx.MustParsePrefix("204.57.0.0/24")),
					sdx.NoMods.SetDstIP(inst2)),
				sdx.RewriteTerm(srv.SrcIP(sdx.MustParsePrefix("198.51.100.0/24")),
					sdx.NoMods.SetDstIP(inst1)),
			}
		} else {
			terms = []sdx.Term{
				sdx.RewriteTerm(srv.SrcIP(sdx.MustParsePrefix("204.57.0.0/24")),
					sdx.NoMods.SetDstIP(inst1)),
				sdx.RewriteTerm(srv.SrcIP(sdx.MustParsePrefix("198.51.100.0/24")),
					sdx.NoMods.SetDstIP(inst1)),
			}
		}
		if rep := x.Recompile(sdx.CompilePolicy(400, terms, nil)); rep.Err != nil {
			log.Fatal(rep.Err)
		}
	}
	setTenantPolicy(false)

	// Two clients behind A, three 1 Mbps flows total.
	exp := trafficgen.New()
	for i, src := range []string{"204.57.0.67", "198.51.100.68", "198.51.100.69"} {
		exp.AddFlow(trafficgen.Flow{
			From: a, Src: sdx.MustParseAddr(src), Dst: service,
			SrcPort: uint16(50000 + i), DstPort: 80, RateMbps: 1,
		})
	}
	exp.WatchRouter("instance-1", b, func(p pkt.Packet) bool { return p.DstIP == inst1 })
	exp.WatchRouter("instance-2", b, func(p pkt.Packet) bool { return p.DstIP == inst2 })

	exp.At(*policyAt, func() {
		fmt.Printf("t=%4ds  tenant installs the wide-area load-balance policy\n", *policyAt)
		setTenantPolicy(true)
	})

	res := exp.Run(*steps)

	fmt.Printf("\n%6s %12s %12s\n", "t(s)", "instance-1", "instance-2")
	for t := 0; t < *steps; t += 30 {
		fmt.Printf("%6d %9.2f Mb %9.2f Mb\n", t, res.Series["instance-1"][t], res.Series["instance-2"][t])
	}
	fmt.Println("\nExpected shape (paper Fig 5b): all 3 Mbps to instance #1 until")
	fmt.Println("the policy installs, then 1 Mbps (the 204.57.0.0/24 client) moves")
	fmt.Println("to instance #2 — destination rewriting in the exchange fabric.")
}
