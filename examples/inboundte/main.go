// Inboundte demonstrates §2's inbound traffic engineering: a dual-homed
// eyeball network steers inbound traffic across its two fabric ports by
// source prefix — direct control that BGP can only approximate with AS
// path prepending or selective announcements.
package main

import (
	"fmt"
	"log"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/pkt"
	"sdx/internal/router"
)

func main() {
	x := sdx.New()
	for _, cfg := range []sdx.ParticipantConfig{
		{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}},
		{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}, {ID: 3}}}, // dual-homed eyeball
		{AS: 300, Name: "C", Ports: []sdx.PhysicalPort{{ID: 4}}},
	} {
		if _, err := x.AddParticipant(cfg); err != nil {
			log.Fatal(err)
		}
	}
	attach := func(as uint32, port sdx.PortID) *router.BorderRouter {
		r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	a, b1, b2, c := attach(100, 1), attach(200, 2), attach(200, 3), attach(300, 4)

	// B announces its eyeball prefix (reachable from both A and C).
	eyeballs := sdx.MustParsePrefix("93.184.0.0/16")
	b1.Announce(eyeballs, 200)

	// Without a policy everything arrives on B's primary port (B1).
	count := func(r *router.BorderRouter) int { return len(r.Received()) }
	send := func(src string) {
		for _, from := range []*router.BorderRouter{a, c} {
			from.SendIPv4(sdx.MustParseAddr(src), sdx.MustParseAddr("93.184.216.34"), 40000, 80, nil)
		}
	}
	x.Recompile()
	send("17.0.0.1")
	send("212.0.0.1")
	fmt.Printf("before policy: B1 received %d packets, B2 received %d\n", count(b1), count(b2))

	// B's inbound TE policy (the §3.1 example): low halves of the source
	// space to port B1, high halves to B2.
	if rep := x.Recompile(sdx.CompilePolicy(200, []sdx.Term{
		sdx.FwdPort(sdx.MatchAll.SrcIP(sdx.MustParsePrefix("0.0.0.0/1")), 2),
		sdx.FwdPort(sdx.MatchAll.SrcIP(sdx.MustParsePrefix("128.0.0.0/1")), 3),
	}, nil)); rep.Err != nil {
		log.Fatal(rep.Err)
	}
	b1.ClearReceived()
	b2.ClearReceived()
	send("17.0.0.1")  // source starting with 0 bit -> B1
	send("212.0.0.1") // source starting with 1 bit -> B2
	fmt.Printf("after policy:  B1 received %d packets, B2 received %d\n", count(b1), count(b2))

	for _, p := range b2.Received() {
		fmt.Printf("  B2: %v\n", p)
		_ = p
	}
	fmt.Println("\nBoth senders' traffic is split by source address, regardless of")
	fmt.Println("which neighbor forwarded it — inbound control BGP cannot express.")
	_ = pkt.ProtoTCP
}
