// Quickstart walks through the paper's Figure 1 scenario end to end:
// three participant ASes, application-specific peering for AS A, the
// forwarding-equivalence-class grouping of §4.2, and live packets through
// the compiled fabric.
package main

import (
	"fmt"
	"log"

	"sdx"
	"sdx/internal/core"
	"sdx/internal/pkt"
	"sdx/internal/router"
)

func main() {
	x := sdx.New()

	// Three participants: A on port 1, B on ports 2 and 3, C on port 4.
	mustAdd(x, sdx.ParticipantConfig{AS: 100, Name: "A", Ports: []sdx.PhysicalPort{{ID: 1}}})
	mustAdd(x, sdx.ParticipantConfig{AS: 200, Name: "B", Ports: []sdx.PhysicalPort{{ID: 2}, {ID: 3}}})
	mustAdd(x, sdx.ParticipantConfig{AS: 300, Name: "C", Ports: []sdx.PhysicalPort{{ID: 4}}})

	// One border router per port.
	a := mustAttach(x, 100, 1)
	b := mustAttach(x, 200, 2)
	mustAttach(x, 200, 3)
	c := mustAttach(x, 300, 4)

	// B and C announce the example prefixes; paths are set up so the
	// route server prefers C for p1/p2 and B for p3 (Figure 1b).
	p1, p2, p3 := sdx.MustParsePrefix("11.0.0.0/8"), sdx.MustParsePrefix("12.0.0.0/8"), sdx.MustParsePrefix("13.0.0.0/8")
	b.Announce(p1, 200, 900, 901)
	b.Announce(p2, 200, 900, 901)
	b.Announce(p3, 200)
	c.Announce(p1, 300)
	c.Announce(p2, 300)
	c.Announce(p3, 300, 900)

	// AS A's §3.1 policy: web via B, https via C, rest follows BGP.
	rep := x.Recompile(sdx.CompilePolicy(100, nil, []sdx.Term{
		sdx.Fwd(sdx.MatchAll.DstPort(80), 200),
		sdx.Fwd(sdx.MatchAll.DstPort(443), 300),
	}))
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}
	fmt.Printf("compiled: %d prefix groups, %d rules (%d policy + %d default) in %v\n\n",
		rep.Groups, rep.Rules, rep.Band1, rep.Band2, rep.Elapsed)

	fmt.Println("forwarding equivalence classes:")
	comp := x.Compiled()
	for i, g := range comp.Groups {
		fmt.Printf("  group %d  vmac=%v vnh=%v default=AS%d prefixes=%v\n",
			i, comp.VMACs[i], comp.VNHs[i], g.DefaultAS, g.Prefixes)
	}
	fmt.Println()

	// Watch deliveries.
	for name, r := range map[string]*router.BorderRouter{"B1": b, "C1": c} {
		name := name
		r.OnDeliver = func(p pkt.Packet) {
			fmt.Printf("  -> delivered at %s: %v\n", name, p)
		}
	}

	send := func(desc string, dst string, port uint16) {
		fmt.Printf("%s (dst %s port %d):\n", desc, dst, port)
		ok := a.SendIPv4(sdx.MustParseAddr("50.0.0.1"), sdx.MustParseAddr(dst), 40000, port, nil)
		if !ok {
			fmt.Println("  -> no route")
		}
	}
	send("web to p1, policy diverts via B", "11.1.1.1", 80)
	send("https to p1, policy sends via C", "11.1.1.1", 443)
	send("ssh to p1, BGP default via C", "11.1.1.1", 22)
	send("ssh to p3, BGP default via B", "13.1.1.1", 22)

	fmt.Println("\nA's FIB next hop for 11.0.0.0/8:")
	nh, _ := a.Lookup(sdx.MustParseAddr("11.1.1.1"))
	mac, _ := x.ARP().Resolve(nh)
	fmt.Printf("  vnh=%v -> vmac=%v (virtual: %v)\n", nh, mac, sdx.IsVMAC(mac))
}

func mustAdd(x *sdx.Controller, cfg sdx.ParticipantConfig) {
	if _, err := x.AddParticipant(cfg); err != nil {
		log.Fatal(err)
	}
}

func mustAttach(x *sdx.Controller, as uint32, port sdx.PortID) *router.BorderRouter {
	r, err := router.Attach(x, as, core.PhysicalPort{ID: port})
	if err != nil {
		log.Fatal(err)
	}
	return r
}
