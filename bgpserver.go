package sdx

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sdx/internal/bgp"
	"sdx/internal/iputil"
)

// handshakeTimeout bounds how long an accepted connection may take to
// complete the OPEN/KEEPALIVE exchange. Without it, a wedged or
// byte-dribbling transport would pin a handler goroutine (and block
// Close) indefinitely.
const handshakeTimeout = 10 * time.Second

// BGPServer accepts BGP sessions from participant border routers over
// TCP, the way the paper's participants peer with the SDX route server:
// received UPDATEs flow into the controller's update pipeline, and the
// controller's (VNH-rewritten) advertisements flow back over the session.
// A connecting router is identified by the AS number in its OPEN, which
// must belong to a registered participant. A reconnecting router
// displaces its previous session, and the controller is told about
// session life-cycle changes (PeerUp/PeerDown) so flapped routes age out
// instead of wedging.
type BGPServer struct {
	ctrl     *Controller
	localAS  uint32
	routerID iputil.Addr
	ln       net.Listener

	mu       sync.Mutex
	wg       sync.WaitGroup
	closed   bool
	conns    map[net.Conn]struct{} // accepted, pre-handshake
	sessions map[*bgp.Session]struct{}
	peers    map[uint32]*bgp.Session // current session per peer AS
	queue    *UpdateQueue            // optional coalescing ingestion queue
}

// UseIngestQueue routes received UPDATEs through the coalescing queue
// instead of applying each one synchronously: session reader goroutines
// enqueue (blocking only when the queue exerts backpressure) and the
// queue's drainer applies coalesced batches via ApplyBatch — the
// full-table-burst configuration. Call before the first session
// connects; the queue's lifecycle (Stop) stays with the caller.
func (s *BGPServer) UseIngestQueue(q *UpdateQueue) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = q
}

// ingest applies one received UPDATE: through the queue when configured,
// synchronously otherwise.
func (s *BGPServer) ingest(from uint32, u *bgp.Update) {
	s.mu.Lock()
	q := s.queue
	s.mu.Unlock()
	if q != nil {
		if err := q.Enqueue(from, u); err == nil {
			return
		}
		// Queue stopped under us: fall back to the synchronous path so
		// late in-flight updates are not dropped.
	}
	s.ctrl.ApplyUpdates(from, u)
}

// ListenBGP starts a route-server endpoint on addr (e.g. "127.0.0.1:0").
// localAS is the route server's own AS (IXP route servers convention-
// ally use a private AS).
func ListenBGP(ctrl *Controller, addr string, localAS uint32) (*BGPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeBGP(ctrl, ln, localAS), nil
}

// ServeBGP runs a route-server endpoint on an existing listener — the
// seam that lets tests drive the real server over an in-memory
// fault-injection transport instead of TCP.
func ServeBGP(ctrl *Controller, ln net.Listener, localAS uint32) *BGPServer {
	s := &BGPServer{
		ctrl: ctrl, localAS: localAS,
		routerID: MustParseAddr("172.0.255.254"),
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[*bgp.Session]struct{}),
		peers:    make(map[uint32]*bgp.Session),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *BGPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, terminates every established
// session with a CEASE notification (and every half-shaken connection
// outright), and waits for all handlers to exit. It does not trigger
// PeerDown route aging: a closing exchange is shutting down, not
// observing peer failures.
func (s *BGPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	open := make([]*bgp.Session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	raw := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		raw = append(raw, conn)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, conn := range raw {
		_ = conn.Close() // mid-handshake: nothing to say, just cut it
	}
	for _, sess := range open {
		// Close sends a best-effort CEASE; the session is torn down either way.
		_ = sess.Close()
	}
	s.wg.Wait()
	return err
}

func (s *BGPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *BGPServer) handle(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()

	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	sess, err := bgp.Establish(conn, bgp.SessionConfig{
		LocalAS:  s.localAS,
		RouterID: s.routerID,
		OnUpdate: func(sess *bgp.Session, u *bgp.Update) {
			s.ingest(sess.PeerAS(), u)
		},
		Metrics: s.ctrl.Metrics(),
		Tracer:  s.ctrl.Tracer(),
	})
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if err != nil {
		return
	}
	_ = conn.SetDeadline(time.Time{})

	peerAS := sess.PeerAS()
	if _, ok := s.ctrl.Participant(peerAS); !ok {
		_ = sess.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = sess.Close()
		return
	}
	displaced := s.peers[peerAS]
	s.peers[peerAS] = sess
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	if displaced != nil {
		// The reconnect wins: the stale session (its transport is usually
		// already dead, it just has not noticed) is cut loose.
		_ = displaced.Close()
	}
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		current := s.peers[peerAS] == sess
		if current {
			delete(s.peers, peerAS)
		}
		closed := s.closed
		s.mu.Unlock()
		// Only the peer's current session going down means the peer is
		// down; a displaced predecessor's teardown says nothing.
		if current && !closed {
			s.ctrl.PeerDown(peerAS)
		}
	}()

	// Stream the controller's advertisements to this session. The sink is
	// unregistered at teardown so reconnect cycles do not pile up dead
	// sinks.
	unregister, err := s.ctrl.OnRoute(peerAS, func(ad RouteAd) {
		select {
		case <-sess.Done():
			return
		default:
		}
		// A failed send means the connection died; the session's read
		// loop observes the same failure and tears the session down.
		_ = sess.SendUpdate(adToUpdate(ad))
	})
	if err != nil {
		_ = sess.Close()
		return
	}
	defer unregister()

	// A fresh session is a full table exchange (RFC 4271 §8): whatever the
	// peer's previous incarnation left in the Adj-RIB-In is flushed, and
	// the peer re-announces over this session.
	s.ctrl.PeerUp(peerAS)

	// Initial table transfer: everything the participant should know.
	for _, ad := range s.ctrl.RoutesFor(peerAS) {
		if err := sess.SendUpdate(adToUpdate(ad)); err != nil {
			_ = sess.Close()
			return
		}
	}
	sess.Start()
	<-sess.Done()
}

func adToUpdate(ad RouteAd) *bgp.Update {
	if ad.Withdraw {
		return &bgp.Update{Withdrawn: []iputil.Prefix{ad.Prefix}}
	}
	attrs := ad.Attrs.Clone()
	attrs.NextHop = ad.NextHop
	return &bgp.Update{Attrs: attrs, NLRI: []iputil.Prefix{ad.Prefix}}
}

// DialBGP connects a border router's BGP side to an SDX route server and
// returns the established session. The caller wires cfg.OnUpdate to its
// FIB before dialing.
func DialBGP(addr string, cfg bgp.SessionConfig) (*bgp.Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sdx: dialing route server: %w", err)
	}
	sess, err := bgp.Establish(conn, cfg)
	if err != nil {
		return nil, err
	}
	sess.Start()
	return sess, nil
}
