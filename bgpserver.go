package sdx

import (
	"fmt"
	"net"
	"sync"

	"sdx/internal/bgp"
	"sdx/internal/iputil"
)

// BGPServer accepts BGP sessions from participant border routers over
// TCP, the way the paper's participants peer with the SDX route server:
// received UPDATEs flow into the controller's update pipeline, and the
// controller's (VNH-rewritten) advertisements flow back over the session.
// A connecting router is identified by the AS number in its OPEN, which
// must belong to a registered participant.
type BGPServer struct {
	ctrl     *Controller
	localAS  uint32
	routerID iputil.Addr
	ln       net.Listener

	mu       sync.Mutex
	wg       sync.WaitGroup
	closed   bool
	sessions map[*bgp.Session]struct{}
}

// ListenBGP starts a route-server endpoint on addr (e.g. "127.0.0.1:0").
// localAS is the route server's own AS (IXP route servers convention-
// ally use a private AS).
func ListenBGP(ctrl *Controller, addr string, localAS uint32) (*BGPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BGPServer{
		ctrl: ctrl, localAS: localAS,
		routerID: MustParseAddr("172.0.255.254"),
		ln:       ln,
		sessions: make(map[*bgp.Session]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *BGPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, terminates every established
// session with a CEASE notification, and waits for all handlers to exit.
func (s *BGPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	open := make([]*bgp.Session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range open {
		// Close sends a best-effort CEASE; the session is torn down either way.
		_ = sess.Close()
	}
	s.wg.Wait()
	return err
}

func (s *BGPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *BGPServer) handle(conn net.Conn) {
	sess, err := bgp.Establish(conn, bgp.SessionConfig{
		LocalAS:  s.localAS,
		RouterID: s.routerID,
		OnUpdate: func(sess *bgp.Session, u *bgp.Update) {
			s.ctrl.ProcessUpdate(sess.PeerAS(), u)
		},
		Metrics: s.ctrl.Metrics(),
		Tracer:  s.ctrl.Tracer(),
	})
	if err != nil {
		return
	}
	peerAS := sess.PeerAS()
	if _, ok := s.ctrl.Participant(peerAS); !ok {
		_ = sess.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = sess.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
	}()

	// Stream the controller's advertisements to this session. The sink
	// remains registered after the session dies but becomes a no-op.
	err = s.ctrl.OnRoute(peerAS, func(ad RouteAd) {
		select {
		case <-sess.Done():
			return
		default:
		}
		// A failed send means the connection died; the session's read
		// loop observes the same failure and tears the session down.
		_ = sess.SendUpdate(adToUpdate(ad))
	})
	if err != nil {
		_ = sess.Close()
		return
	}
	// Initial table transfer: everything the participant should know.
	for _, ad := range s.ctrl.RoutesFor(peerAS) {
		if err := sess.SendUpdate(adToUpdate(ad)); err != nil {
			_ = sess.Close()
			return
		}
	}
	sess.Start()
	<-sess.Done()
}

func adToUpdate(ad RouteAd) *bgp.Update {
	if ad.Withdraw {
		return &bgp.Update{Withdrawn: []iputil.Prefix{ad.Prefix}}
	}
	attrs := ad.Attrs.Clone()
	attrs.NextHop = ad.NextHop
	return &bgp.Update{Attrs: attrs, NLRI: []iputil.Prefix{ad.Prefix}}
}

// DialBGP connects a border router's BGP side to an SDX route server and
// returns the established session. The caller wires cfg.OnUpdate to its
// FIB before dialing.
func DialBGP(addr string, cfg bgp.SessionConfig) (*bgp.Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sdx: dialing route server: %w", err)
	}
	sess, err := bgp.Establish(conn, cfg)
	if err != nil {
		return nil, err
	}
	sess.Start()
	return sess, nil
}
